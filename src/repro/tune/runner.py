"""The sharded campaign runner: fan evaluations across cores.

Two layers:

* :func:`map_shards` — a minimal ``multiprocessing`` map whose merged
  output is **bit-identical to a serial run**: results come back
  ``imap_unordered`` (no head-of-line blocking) but are reassembled
  into submission order, and the mapped function must be a pure
  top-level function of its item.  Reused by the chaos/contention
  sweeps.
* :func:`run_campaign` — the propose → (cache? evaluate) → observe
  loop.  Batches have a **fixed size independent of worker count**, and
  all search-strategy RNG draws happen in the parent between batches,
  so the trial sequence is a pure function of ``(space, search, seed,
  budget, batch)`` — ``workers`` only changes the wall clock.  Pinned
  by test.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import RngFactory
from .cache import ResultsCache, entry_key
from .env import EnvConfig, EvalJob, Fitness, evaluate_job
from .search import SearchStrategy, make_search
from .space import ParamSpace, default_space


def _indexed_call(payload):
    """Worker-side shim: run ``fn(item)`` and tag it with its index
    (top-level so it pickles under any start method)."""
    fn, index, item = payload
    return index, fn(item)


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm imports); fall back to the
    platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None)


def map_shards(fn: Callable, items: Sequence, workers: int = 1) -> List:
    """Map ``fn`` over ``items``, optionally across processes.

    ``fn`` must be a top-level (picklable) pure function.  With
    ``workers <= 1`` this is a plain serial loop; otherwise a process
    pool evaluates the items concurrently and the results are
    reassembled in submission order, making the output bit-identical
    to the serial loop for pure ``fn``.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = _pool_context()
    out: List = [None] * len(items)
    with ctx.Pool(processes=min(workers, len(items))) as pool:
        payloads = [(fn, i, item) for i, item in enumerate(items)]
        for index, result in pool.imap_unordered(_indexed_call, payloads):
            out[index] = result
    return out


def trial_seed(campaign_seed: int, index: int) -> int:
    """The evaluation seed of trial ``index``: a stable derivation
    from the campaign seed, independent of batching and workers."""
    return RngFactory(campaign_seed).spawn("tune", "trial",
                                           index).root_seed


@dataclass(frozen=True)
class Trial:
    """One completed evaluation in campaign order."""

    index: int
    point: Tuple[Tuple[str, object], ...]
    seed: int
    fitness: Fitness
    cached: bool


@dataclass
class CampaignResult:
    """A finished campaign: every trial plus derived summaries."""

    workload: str
    search: str
    budget: int
    seed: int
    workers: int
    trials: List[Trial] = field(default_factory=list)
    evaluations_run: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def best(self) -> Trial:
        """Highest-scalar trial (earliest wins ties)."""
        if not self.trials:
            raise ValueError("campaign ran no trials")
        return max(self.trials, key=lambda t: (t.fitness.scalar, -t.index))

    @property
    def trajectory(self) -> List[float]:
        """Best-so-far scalar after each trial."""
        out, best = [], float("-inf")
        for t in self.trials:
            best = max(best, t.fitness.scalar)
            out.append(best)
        return out


def run_campaign(workload: str, search: str = "random", budget: int = 16,
                 batch: int = 4, seed: int = 20180611, workers: int = 1,
                 cache: Optional[ResultsCache] = None,
                 env_config: Optional[EnvConfig] = None,
                 space: Optional[ParamSpace] = None,
                 strategy: Optional[SearchStrategy] = None,
                 log: Optional[Callable[[str], None]] = None) \
        -> CampaignResult:
    """Run one exploration campaign and return its trials.

    The loop: the strategy proposes a fixed-size batch, cached points
    are answered from the store, the rest fan out through
    :func:`map_shards`, results are written back to the cache and fed
    to ``strategy.observe`` in proposal order.  ``workers`` never
    changes any proposed point, seed or fitness — only the wall clock.
    """
    if space is None:
        space = default_space()
    if env_config is None:
        env_config = EnvConfig()
    if strategy is None:
        strategy = make_search(search, space, seed)
    result = CampaignResult(workload=workload, search=strategy.name,
                            budget=budget, seed=seed, workers=workers)
    t0 = time.perf_counter()
    index = 0
    while index < budget:
        n = min(batch, budget - index)
        points = strategy.propose(n)
        batch_trials: List[Optional[Trial]] = [None] * n
        jobs: List[EvalJob] = []
        keys: Dict[int, str] = {}
        for k, point in enumerate(points):
            canonical = space.canonical(point)
            eval_seed = trial_seed(seed, index + k)
            if cache is not None:
                key = entry_key(canonical, eval_seed, workload,
                                env_config.to_dict())
                keys[k] = key
                stored = cache.get(key)
                if stored is not None:
                    batch_trials[k] = Trial(
                        index=index + k, point=canonical, seed=eval_seed,
                        fitness=Fitness.from_dict(stored), cached=True)
                    result.cache_hits += 1
                    continue
            jobs.append(EvalJob(index=k, point=canonical, seed=eval_seed,
                                workload=workload, config=env_config))
        evaluated = map_shards(evaluate_job, jobs, workers=workers)
        for job, (k, fitness) in zip(jobs, evaluated):
            trial = Trial(index=index + k, point=job.point, seed=job.seed,
                          fitness=fitness, cached=False)
            batch_trials[k] = trial
            result.evaluations_run += 1
            if cache is not None:
                cache.put(keys.get(k) or entry_key(
                    job.point, job.seed, workload, env_config.to_dict()),
                    fitness.to_dict(),
                    meta={"workload": workload, "trial": index + k})
        trials = [t for t in batch_trials if t is not None]
        strategy.observe([(dict(t.point), t.fitness) for t in trials])
        result.trials.extend(trials)
        index += n
        if log is not None:
            best = result.best
            log(f"trial {index}/{budget}: best scalar "
                f"{best.fitness.scalar:.4g} (trial {best.index}, "
                f"{result.cache_hits} cached)")
    result.wall_seconds = time.perf_counter() - t0
    return result
