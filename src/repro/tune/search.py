"""Pluggable, seed-deterministic search over a :class:`ParamSpace`.

All strategies share one contract:

* ``propose(n)`` returns the next ``n`` points to evaluate;
* ``observe(results)`` feeds back ``(point, fitness)`` pairs in
  proposal order.

Every random draw comes from a spawned
:class:`~repro.sim.rng.RngFactory` stream keyed on the strategy name,
and both methods run only in the campaign's parent process — so a
campaign's proposal sequence is a pure function of ``(space, seed,
observed fitnesses)``, independent of how many worker processes
evaluated them.  That is the property the parallel==serial test pins.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Tuple

from ..errors import ReproError
from ..sim import RngFactory
from .env import Fitness
from .space import ParamSpace


class SearchError(ReproError):
    """Raised for unknown strategies or malformed observations."""


class SearchStrategy:
    """Base class: holds the space and the strategy's RNG stream."""

    #: registry key; subclasses override
    name = "base"

    def __init__(self, space: ParamSpace, seed: int):
        self.space = space
        self.seed = seed
        self.rng = RngFactory(seed).spawn("tune", self.name).stream("draws")

    def propose(self, n: int) -> List[Dict[str, object]]:
        """The next ``n`` points to evaluate."""
        raise NotImplementedError

    def observe(self, results: Iterable[Tuple[Dict[str, object],
                                              Fitness]]) -> None:
        """Feed back evaluated ``(point, fitness)`` pairs (no-op by
        default; learning strategies override)."""


class RandomSearch(SearchStrategy):
    """Uniform random points."""

    name = "random"

    def propose(self, n: int) -> List[Dict[str, object]]:
        """``n`` uniform draws from the space."""
        return [self.space.random_point(self.rng) for _ in range(n)]


class GridSearch(SearchStrategy):
    """Exhaustive row-major sweep (cycles when the budget exceeds the
    space)."""

    name = "grid"

    def __init__(self, space: ParamSpace, seed: int):
        super().__init__(space, seed)
        self._points = itertools.cycle(space.iter_points())

    def propose(self, n: int) -> List[Dict[str, object]]:
        """The next ``n`` grid points in row-major order."""
        return [dict(next(self._points)) for _ in range(n)]


class EvolutionarySearch(SearchStrategy):
    """Mutation + uniform crossover over the encoded vector.

    Keeps an archive of every observation; parents are drawn from the
    elite (best ``elite_fraction`` by scalar, ties broken by encoded
    vector so the ordering is deterministic).  Until the archive holds
    one full population the strategy explores uniformly.
    """

    name = "evolution"

    def __init__(self, space: ParamSpace, seed: int, population: int = 8,
                 elite_fraction: float = 0.5, mutation_rate: float = 0.25):
        super().__init__(space, seed)
        self.population = max(2, population)
        self.elite_fraction = elite_fraction
        self.mutation_rate = mutation_rate
        self._archive: List[Tuple[float, Tuple[int, ...]]] = []

    def _elite(self) -> List[Tuple[int, ...]]:
        ranked = sorted(self._archive, key=lambda sv: (-sv[0], sv[1]))
        k = max(2, int(len(ranked) * self.elite_fraction))
        return [vec for _score, vec in ranked[:k]]

    def propose(self, n: int) -> List[Dict[str, object]]:
        """``n`` children (or uniform explorers pre-population)."""
        out = []
        for _ in range(n):
            if len(self._archive) < self.population:
                out.append(self.space.random_point(self.rng))
                continue
            elite = self._elite()
            pa = elite[int(self.rng.integers(len(elite)))]
            pb = elite[int(self.rng.integers(len(elite)))]
            child = []
            for axis, a_gene, b_gene in zip(self.space.axes, pa, pb):
                gene = a_gene if int(self.rng.integers(2)) == 0 else b_gene
                if float(self.rng.random()) < self.mutation_rate:
                    gene = int(self.rng.integers(len(axis.values)))
                child.append(gene)
            out.append(self.space.decode(child))
        return out

    def observe(self, results) -> None:
        """Fold evaluated points into the archive."""
        for point, fitness in results:
            self._archive.append((fitness.scalar,
                                  self.space.encode(point)))


class BayesLite(SearchStrategy):
    """A factorized surrogate: per-(axis, value) running mean fitness
    plus an exploration bonus, stdlib-math only.

    Each proposal scores a pool of random candidates by the sum over
    axes of the value's posterior mean (global mean prior) plus
    ``explore / sqrt(1 + visits)``, and keeps the argmax (ties broken
    by encoded vector).  Factorized means it cannot model axis
    interactions — it is the cheap "surrogate-guided" baseline, not a
    real GP.
    """

    name = "bayes"

    def __init__(self, space: ParamSpace, seed: int, pool: int = 16,
                 explore: float = 0.5):
        super().__init__(space, seed)
        self.pool = max(2, pool)
        self.explore = explore
        #: (axis index, value index) -> [count, sum]
        self._stats: Dict[Tuple[int, int], List[float]] = {}
        self._global: List[float] = [0, 0.0]

    def _score(self, vector: Tuple[int, ...]) -> float:
        prior = (self._global[1] / self._global[0]
                 if self._global[0] else 0.0)
        score = 0.0
        for axis_idx, value_idx in enumerate(vector):
            count, total = self._stats.get((axis_idx, value_idx), (0, 0.0))
            mean = total / count if count else prior
            score += mean + self.explore / math.sqrt(1.0 + count)
        return score

    def propose(self, n: int) -> List[Dict[str, object]]:
        """``n`` argmax-of-pool candidates under the surrogate."""
        out = []
        for _ in range(n):
            candidates = [self.space.encode(self.space.random_point(self.rng))
                          for _ in range(self.pool)]
            best = max(candidates, key=lambda v: (self._score(v),
                                                  tuple(-g for g in v)))
            out.append(self.space.decode(best))
        return out

    def observe(self, results) -> None:
        """Update the per-(axis, value) posteriors."""
        for point, fitness in results:
            vector = self.space.encode(point)
            self._global[0] += 1
            self._global[1] += fitness.scalar
            for axis_idx, value_idx in enumerate(vector):
                cell = self._stats.setdefault((axis_idx, value_idx),
                                              [0, 0.0])
                cell[0] += 1
                cell[1] += fitness.scalar


#: strategy registry: CLI name -> class
STRATEGIES = {cls.name: cls for cls in
              (RandomSearch, GridSearch, EvolutionarySearch, BayesLite)}


def make_search(name: str, space: ParamSpace, seed: int,
                **kwargs) -> SearchStrategy:
    """Instantiate the named strategy (SearchError on unknown names)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise SearchError(f"unknown search strategy {name!r}; choose "
                          f"from {', '.join(sorted(STRATEGIES))}") from None
    return cls(space, seed, **kwargs)
