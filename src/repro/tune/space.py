"""The typed design space: named discrete axes over the calibration.

A :class:`ParamSpace` is an ordered tuple of :class:`Axis` objects,
each a named, finite, ordered set of values that overrides one field
of one :class:`~repro.params.Params` section (or, for the ``os_config``
axis, selects the OS stack itself).  Points have three interchangeable
forms:

* **dict** ``{axis name: value}`` — the human-facing form;
* **canonical** ``((name, value), ...)`` in axis-declaration order —
  hashable, JSON-stable, the cache-key form;
* **encoded** ``(index, index, ...)`` — the integer-vector form the
  evolutionary/surrogate searches mutate.

``materialize`` turns a point into a :class:`Design` — a frozen
:class:`~repro.params.Params` plus the :class:`~repro.config.OSConfig`
to build the machine under — without touching any global state, so an
unused space perturbs nothing (the paper figures stay bit-identical
with tuning off).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..config import OSConfig
from ..errors import ReproError
from ..params import Params, default_params
from ..units import KiB, PAGE_SIZE


class SpaceError(ReproError):
    """Raised for malformed axes or design points."""


@dataclass(frozen=True)
class Axis:
    """One named, discrete design axis.

    ``section``/``field`` name the :class:`~repro.params.Params` slot
    the axis overrides; the special section ``None`` marks axes (like
    ``os_config``) that materialize outside the params bundle.
    """

    name: str
    values: Tuple[object, ...]
    section: Optional[str]
    field: str
    doc: str = ""

    def __post_init__(self):
        if not self.values:
            raise SpaceError(f"axis {self.name!r} declares no values")
        if len(set(self.values)) != len(self.values):
            raise SpaceError(f"axis {self.name!r} repeats a value")

    def index_of(self, value: object) -> int:
        """Position of ``value`` on this axis (SpaceError if absent)."""
        try:
            return self.values.index(value)
        except ValueError:
            raise SpaceError(
                f"axis {self.name!r} has no value {value!r} "
                f"(choose from {list(self.values)})") from None


@dataclass(frozen=True)
class Design:
    """A materialized design point: calibrated params + OS stack."""

    params: Params
    os_config: OSConfig


#: the OS-configuration axis values, keyed by their canonical string
#: form (strings keep points JSON/cache stable)
OS_CONFIG_VALUES = {cfg.value: cfg for cfg in OSConfig}


class ParamSpace:
    """An ordered set of axes with validation and canonical encoding."""

    def __init__(self, axes: Sequence[Axis]):
        if not axes:
            raise SpaceError("a ParamSpace needs at least one axis")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate axis names: {names}")
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self._by_name: Dict[str, Axis] = {a.name: a for a in self.axes}

    def __len__(self) -> int:
        return len(self.axes)

    def axis(self, name: str) -> Axis:
        """The named axis (SpaceError if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SpaceError(
                f"unknown axis {name!r} (space has "
                f"{', '.join(self._by_name)})") from None

    @property
    def size(self) -> int:
        """Number of distinct points in the space."""
        n = 1
        for a in self.axes:
            n *= len(a.values)
        return n

    # -- point forms -----------------------------------------------------

    def validate(self, point: Dict[str, object]) -> None:
        """Raise :class:`SpaceError` unless ``point`` assigns exactly
        one declared value to every axis."""
        extra = set(point) - set(self._by_name)
        if extra:
            raise SpaceError(f"point assigns unknown axes: {sorted(extra)}")
        missing = set(self._by_name) - set(point)
        if missing:
            raise SpaceError(f"point misses axes: {sorted(missing)}")
        for name, value in point.items():
            self._by_name[name].index_of(value)

    def canonical(self, point: Dict[str, object]) \
            -> Tuple[Tuple[str, object], ...]:
        """The hashable cache-key form, in axis-declaration order."""
        self.validate(point)
        return tuple((a.name, point[a.name]) for a in self.axes)

    def encode(self, point: Dict[str, object]) -> Tuple[int, ...]:
        """The integer-vector form (per-axis value indices)."""
        self.validate(point)
        return tuple(a.index_of(point[a.name]) for a in self.axes)

    def decode(self, vector: Sequence[int]) -> Dict[str, object]:
        """Invert :meth:`encode` (SpaceError on out-of-range genes)."""
        if len(vector) != len(self.axes):
            raise SpaceError(f"vector length {len(vector)} != "
                             f"{len(self.axes)} axes")
        point = {}
        for a, idx in zip(self.axes, vector):
            if not 0 <= idx < len(a.values):
                raise SpaceError(f"axis {a.name!r} index {idx} out of "
                                 f"range 0..{len(a.values) - 1}")
            point[a.name] = a.values[idx]
        return point

    def iter_points(self) -> Iterator[Dict[str, object]]:
        """Every point, in row-major axis-declaration order."""
        for combo in itertools.product(*(a.values for a in self.axes)):
            yield {a.name: v for a, v in zip(self.axes, combo)}

    def random_point(self, rng) -> Dict[str, object]:
        """One uniform point, drawn from a numpy ``Generator``."""
        return {a.name: a.values[int(rng.integers(len(a.values)))]
                for a in self.axes}

    # -- materialization -------------------------------------------------

    def materialize(self, point: Dict[str, object],
                    base: Optional[Params] = None,
                    seed: Optional[int] = None) -> Design:
        """Turn a point into a :class:`Design` over ``base`` params.

        Section overrides are grouped and applied with one
        ``dataclasses.replace`` per touched section; ``app_cores`` is
        clamped to the core budget when an ``os_cores`` override would
        exceed ``total_cores`` (the partition reservation would
        otherwise fail).
        """
        self.validate(point)
        params = base if base is not None else default_params()
        if seed is not None:
            params = replace(params, seed=seed)
        os_config = OSConfig.MCKERNEL_HFI
        by_section: Dict[str, Dict[str, object]] = {}
        for a in self.axes:
            value = point[a.name]
            if a.section is None:
                if a.field == "os_config":
                    os_config = OS_CONFIG_VALUES[value]
                else:
                    raise SpaceError(f"axis {a.name!r} has no "
                                     f"materialization rule")
                continue
            by_section.setdefault(a.section, {})[a.field] = value
        node_kw = by_section.get("node", {})
        if "os_cores" in node_kw:
            total = node_kw.get("total_cores", params.node.total_cores)
            budget = total - node_kw["os_cores"]
            if node_kw.get("app_cores", params.node.app_cores) > budget:
                node_kw["app_cores"] = budget
        sections = {name: replace(getattr(params, name), **kw)
                    for name, kw in by_section.items()}
        return Design(params=params.with_overrides(**sections),
                      os_config=os_config)

    def describe(self) -> str:
        """One line per axis: name, cardinality, values."""
        lines = [f"{len(self.axes)} axes, {self.size} points"]
        for a in self.axes:
            lines.append(f"  {a.name:<18} ({len(a.values)}) "
                         f"{list(a.values)}")
        return "\n".join(lines)


#: the default design vector: the paper's ablation axes plus the OS
#: stack itself as a discrete axis (ROADMAP item 2's parameter vector)
DEFAULT_AXES = (
    Axis("sdma_engines", (1, 2, 4, 8, 16), "nic", "sdma_engines",
         doc="SDMA engines per HFI"),
    Axis("pio_threshold", (16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB),
         "nic", "pio_threshold",
         doc="PSM switches from PIO to SDMA at this size"),
    Axis("sdma_max_request", (PAGE_SIZE, 8 * KiB, 10 * KiB, 16 * KiB),
         "nic", "sdma_max_request",
         doc="descriptor cap: largest single SDMA request"),
    Axis("window_size", (128 * KiB, 256 * KiB, 512 * KiB),
         "psm", "window_size",
         doc="TID window: rendezvous registration granule"),
    Axis("prefetch_windows", (1, 2, 3, 4), "psm", "prefetch_windows",
         doc="offload batch: windows registered ahead of the data"),
    Axis("os_cores", (2, 4, 8), "node", "os_cores",
         doc="cores reserved for Linux/OS activity"),
    Axis("os_config", tuple(OS_CONFIG_VALUES), None, "os_config",
         doc="which OS stack runs the ranks"),
)


def default_space() -> ParamSpace:
    """The default PicoTune space over :data:`DEFAULT_AXES`."""
    return ParamSpace(DEFAULT_AXES)
