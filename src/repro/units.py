"""Unit helpers shared across the simulator.

All simulated time is kept in **seconds** (floats); all sizes in **bytes**
(ints).  These helpers exist so that calibration constants and test
expectations read like the paper ("64KB threshold", "10kB SDMA request",
"4MB buffer") rather than as raw powers of two.
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: x86_64 base page size used by both kernels in the paper.
PAGE_SIZE = 4 * KiB
#: x86_64 large ("huge") page size McKernel prefers for anonymous memory.
LARGE_PAGE_SIZE = 2 * MiB

# --- times -----------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3
NSEC = 1e-9


def pages_for(nbytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages of ``page_size`` needed to back ``nbytes``."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    return -(-nbytes // page_size) if nbytes else 0


def align_down(value: int, align: int) -> int:
    """Largest multiple of ``align`` that is <= ``value``."""
    return value - (value % align)


def align_up(value: int, align: int) -> int:
    """Smallest multiple of ``align`` that is >= ``value``."""
    return -(-value // align) * align


def fmt_size(nbytes: float) -> str:
    """Human-readable size, IMB style (``4MB``, ``64KB``, ``8B``)."""
    if nbytes >= GiB:
        return _fmt(nbytes / GiB, "GB")
    if nbytes >= MiB:
        return _fmt(nbytes / MiB, "MB")
    if nbytes >= KiB:
        return _fmt(nbytes / KiB, "KB")
    return f"{int(nbytes)}B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration (``3.2us``, ``1.5ms``, ``2.0s``)."""
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= MSEC:
        return f"{seconds / MSEC:.3g}ms"
    if seconds >= USEC:
        return f"{seconds / USEC:.3g}us"
    return f"{seconds / NSEC:.3g}ns"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Human-readable bandwidth in MB/s (the unit of the paper's Figure 4)."""
    return f"{bytes_per_second / 1e6:.1f}MB/s"


def _fmt(value: float, suffix: str) -> str:
    if value == int(value):
        return f"{int(value)}{suffix}"
    return f"{value:.3g}{suffix}"
