"""PicoCheck: explorer, oracles, shrinker, artifacts, CLI, identity.

The centerpiece is the seeded-bug fixture
(:mod:`repro.analysis.check_fixtures`): the explorer must find the
seeded cross-kernel race, shrink the counterexample to something
strictly smaller than the first violating schedule, name both sites and
kernels in the report, and replay the exported ``.sched`` script to the
same verdict.  The negative control (bug compiled out) must explore the
same bound exhaustively and find nothing.
"""

import json
import os

import pytest

from repro.analysis.check import (Bounds, Choice, ControlledScheduler,
                                  Schedule, cmd_check, execute_run,
                                  explore_config, get_scenarios,
                                  parse_schedule_script, replay_schedule,
                                  run_check, write_schedule_script)
from repro.analysis.check_fixtures import FlagRaceScenario
from repro.config import ANALYSIS, FAULTS, TRACE
from repro.experiments import run_fig4
from repro.faults import ScheduledFault
from repro.units import KiB

#: small but roomy bound: the rig has ~5 choice points, so this is
#: exhaustive for it
RIG_BOUNDS = Bounds(depth=8, preemptions=2, faults=1, occ_cap=1,
                    max_runs=200, step_budget=10_000)


@pytest.fixture(scope="module")
def found(tmp_path_factory):
    """One full find->shrink->export pass, shared by the assertions."""
    out_dir = str(tmp_path_factory.mktemp("check_artifacts"))
    result = run_check("seeded-flag-race", bounds=RIG_BOUNDS,
                       out_dir=out_dir)
    return result


# --- the seeded bug is found, shrunk and attributed --------------------------

def test_explorer_finds_the_seeded_bug(found):
    assert found.violation_found
    assert found.ok  # the fixture *expects* a violation
    outcome = found.outcomes[0]
    assert outcome.config == "rig"
    assert outcome.violation is not None
    assert "race on rig.data" in outcome.violation


def test_report_names_both_sites_and_kernels(found):
    violation = found.outcomes[0].violation
    assert "write from linux" in violation
    assert "write from mckernel" in violation
    assert "in consumer" in violation
    assert "in producer" in violation


def test_shrunk_counterexample_is_strictly_smaller(found):
    outcome = found.outcomes[0]
    assert outcome.first_schedule is not None
    assert outcome.minimal is not None
    assert outcome.minimal.size < outcome.first_schedule.size
    # the dense first-violating schedule names every recorded choice
    # point; the rig has several, the minimal repro needs exactly one
    assert outcome.first_schedule.size >= 2
    assert outcome.minimal.size == 1


def test_minimal_schedule_still_violates(found):
    outcome = found.outcomes[0]
    result = execute_run(FlagRaceScenario(), "rig", outcome.minimal,
                         RIG_BOUNDS)
    assert result.violations


def test_artifacts_written_and_script_replayable(found, tmp_path):
    outcome = found.outcomes[0]
    assert outcome.sched_path and os.path.exists(outcome.sched_path)
    assert outcome.trace_path and os.path.exists(outcome.trace_path)
    with open(outcome.sched_path) as fh:
        name, config, schedule = parse_schedule_script(fh.read())
    assert (name, config) == ("seeded-flag-race", "rig")
    assert schedule == outcome.minimal
    result, trace_path = replay_schedule(outcome.sched_path,
                                         out_dir=str(tmp_path))
    assert result.violations
    assert os.path.exists(trace_path)


def test_counterexample_trace_marks_the_deviation(found):
    """The Perfetto artifact carries the choice points as instant
    markers, with the deviated pick flagged."""
    with open(found.outcomes[0].trace_path) as fh:
        doc = json.load(fh)
    names = [e.get("name", "") for e in doc["traceEvents"]]
    assert any(n.startswith("choice[") for n in names)
    deviated = [e for e in doc["traceEvents"]
                if e.get("args", {}).get("deviation") is True]
    assert deviated, "no deviated choice marker in the exported trace"


# --- negative control and exploration mechanics ------------------------------

def test_bug_disabled_explores_clean():
    scenario = FlagRaceScenario(bug_enabled=False)
    outcome = explore_config(scenario, "rig", RIG_BOUNDS)
    assert outcome.violation is None
    assert outcome.exhausted
    assert outcome.explored >= 1


def test_default_schedule_is_clean_even_with_the_bug():
    """The seeded bug hides from the FIFO default — that is the point:
    only systematic exploration finds it."""
    result = execute_run(FlagRaceScenario(), "rig", Schedule.empty(),
                         RIG_BOUNDS)
    assert result.violations == []
    assert result.quiesced
    assert len(result.choice_points) >= 2


def test_replay_is_deterministic():
    scenario = FlagRaceScenario()
    a = execute_run(scenario, "rig", Schedule.empty(), RIG_BOUNDS)
    b = execute_run(scenario, "rig", Schedule.empty(), RIG_BOUNDS)
    assert a.fingerprint == b.fingerprint
    assert [cp.ready_seqs for cp in a.choice_points] \
        == [cp.ready_seqs for cp in b.choice_points]


def test_divergent_override_falls_back_to_fifo():
    """A pick the replayed ready set no longer offers must not crash
    the shrinker's probe runs — it degrades to the default."""
    wild = Schedule(choices=(Choice(0, 99),))
    result = execute_run(FlagRaceScenario(), "rig", wild, RIG_BOUNDS)
    assert result.divergences == 1
    assert result.quiesced


def test_globals_restored_after_check_runs():
    execute_run(FlagRaceScenario(), "rig", Schedule.empty(), RIG_BOUNDS)
    assert ANALYSIS.check is False
    assert ANALYSIS.race_detection is False
    assert ANALYSIS.lockdep is False
    assert FAULTS.enabled is False and FAULTS.plan is None
    assert TRACE.enabled is False and TRACE.collector is None


# --- schedule scripts --------------------------------------------------------

def test_schedule_script_round_trip(tmp_path):
    schedule = Schedule(choices=(Choice(3, 1), Choice(7, 2)),
                        faults=(ScheduledFault("irq.lost", 4),))
    path = write_schedule_script(str(tmp_path / "x.sched"), "pingpong",
                                 "mckernel_hfi", schedule, note="test")
    with open(path) as fh:
        name, config, parsed = parse_schedule_script(fh.read())
    assert (name, config) == ("pingpong", "mckernel_hfi")
    assert parsed == schedule


def test_schedule_script_rejects_garbage():
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        parse_schedule_script("scenario: x\nconfig: y\nbanana 3\n")
    with pytest.raises(ReproError):
        parse_schedule_script("choice 0 1\n")  # no scenario/config


# --- the controlled scheduler as a unit --------------------------------------

def test_scheduler_records_footprints_and_choices():
    scheduler = ControlledScheduler(Schedule(choices=(Choice(0, 1),)))
    scenario = FlagRaceScenario()
    # drive through execute_run so the full harness wiring is exercised
    result = execute_run(scenario, "rig", Schedule(choices=(Choice(0, 1),)),
                         RIG_BOUNDS)
    assert result.choice_points[0].pick == 1
    assert all(cp.pick == 0 for cp in result.choice_points[1:])
    assert any(rec.writes for rec in result.step_records)
    assert any("producer" in n for rec in result.step_records
               for n in rec.resumed_names)
    assert scheduler.steps == []  # the unit above was never installed


# --- CLI ---------------------------------------------------------------------

def test_cmd_check_fixture_exit_zero(tmp_path, capsys):
    rc = cmd_check(["seeded-flag-race", "--smoke",
                    "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "seeded violation found and shrunk" in out


def test_cmd_check_usage_errors(capsys):
    assert cmd_check(["no-such-scenario"]) == 2
    assert cmd_check([]) == 2
    assert cmd_check(["pingpong", "--bogus-flag"]) == 2
    capsys.readouterr()


def test_cmd_check_list(capsys):
    assert cmd_check(["--list"]) == 0
    out = capsys.readouterr().out
    assert "pingpong" in out and "seeded-flag-race" in out


def test_scenario_registry():
    scenarios = get_scenarios()
    assert set(scenarios) == {"pingpong", "seeded-flag-race",
                              "guard-breaker", "pxd-fallback"}
    assert scenarios["pingpong"].expect_violation is False
    assert scenarios["seeded-flag-race"].expect_violation is True
    assert scenarios["guard-breaker"].expect_violation is False
    assert scenarios["pxd-fallback"].expect_violation is False


# --- the disabled-identity guarantee -----------------------------------------

def test_check_runs_leave_experiments_bit_identical(tmp_path):
    """With ``ANALYSIS.check`` off no simulator carries a scheduler, so
    fig4 before and after a full check exploration is bit-identical —
    the PD012 runtime contract."""
    sizes = (16 * KiB,)
    baseline = run_fig4(sizes=sizes, repetitions=1)
    run_check("seeded-flag-race", bounds=RIG_BOUNDS,
              out_dir=str(tmp_path))
    after = run_fig4(sizes=sizes, repetitions=1)
    assert after.series == baseline.series
