"""The guard-breaker PicoCheck scenario: FSM legality as a model-checker
oracle, with and without adversarial fault placement."""

from repro.analysis.check import Schedule, execute_run, get_scenarios
from repro.analysis.check_guard import GuardBreakerScenario
from repro.config import GUARD
from repro.faults import ScheduledFault


def test_scenario_is_registered():
    scenario = get_scenarios()["guard-breaker"]
    assert scenario.configs == ("mckernel_hfi",)
    assert scenario.expect_violation is False


def test_default_schedule_is_violation_free():
    result = execute_run(GuardBreakerScenario(), "mckernel_hfi",
                         Schedule.empty(), _bounds())
    assert result.quiesced
    assert result.violations == []


def test_placed_engine_halt_walks_the_breaker_legally():
    """A fault placed on the first SDMA opportunity opens the breaker;
    the run must still quiesce with every message intact-or-typed and
    only legal FSM edges."""
    schedule = Schedule(choices=(),
                        faults=(ScheduledFault("sdma.engine_halt", 0),))
    result = execute_run(GuardBreakerScenario(), "mckernel_hfi",
                         schedule, _bounds())
    assert result.quiesced
    assert result.violations == []
    assert result.census.get("sdma.engine_halt", 0) >= 1


def test_scenario_restores_guard_config():
    assert not GUARD.enabled
    execute_run(GuardBreakerScenario(), "mckernel_hfi", Schedule.empty(),
                _bounds())
    assert not GUARD.enabled and GUARD.policy is None


def _bounds():
    from repro.analysis.check import SMOKE_BOUNDS
    return SMOKE_BOUNDS
