"""The pxd-fallback PicoCheck scenario: replica FSM legality and
read-your-writes as model-checker oracles, across the fast-path suspend
seam, with and without adversarial storage-fault placement."""

from repro.analysis.check import SMOKE_BOUNDS, Schedule, execute_run, \
    get_scenarios
from repro.analysis.check_pxd import PxdFallbackScenario
from repro.config import GUARD
from repro.faults import ScheduledFault


def test_scenario_is_registered():
    scenario = get_scenarios()["pxd-fallback"]
    assert scenario.configs == ("mckernel_hfi",)
    assert scenario.expect_violation is False


def test_default_schedule_is_violation_free():
    result = execute_run(PxdFallbackScenario(), "mckernel_hfi",
                         Schedule.empty(), SMOKE_BOUNDS)
    assert result.quiesced
    assert result.violations == []
    # the write train creates schedulable concurrency and the device
    # model offers storage-fault opportunities the explorer can seize
    assert result.choice_points
    assert result.census.get("media.write_error", 0) >= 1


def test_runs_are_deterministic():
    a = execute_run(PxdFallbackScenario(), "mckernel_hfi",
                    Schedule.empty(), SMOKE_BOUNDS)
    b = execute_run(PxdFallbackScenario(), "mckernel_hfi",
                    Schedule.empty(), SMOKE_BOUNDS)
    assert a.fingerprint == b.fingerprint
    assert [cp.ready_seqs for cp in a.choice_points] \
        == [cp.ready_seqs for cp in b.choice_points]


def test_placed_media_fault_is_absorbed_by_recovery():
    """A write error placed on the first media opportunity evicts a
    replica mid-train; the survivors plus the guard plane must keep
    every oracle green."""
    schedule = Schedule(choices=(),
                        faults=(ScheduledFault("media.write_error", 0),))
    result = execute_run(PxdFallbackScenario(), "mckernel_hfi",
                         schedule, SMOKE_BOUNDS)
    assert result.quiesced
    assert result.violations == []
    assert result.census.get("media.write_error", 0) >= 1


def test_placed_path_loss_is_absorbed_by_recovery():
    schedule = Schedule(choices=(),
                        faults=(ScheduledFault("pxd.path_loss", 0),))
    result = execute_run(PxdFallbackScenario(), "mckernel_hfi",
                         schedule, SMOKE_BOUNDS)
    assert result.quiesced
    assert result.violations == []


def test_scenario_restores_guard_config():
    assert not GUARD.enabled
    execute_run(PxdFallbackScenario(), "mckernel_hfi", Schedule.empty(),
                SMOKE_BOUNDS)
    assert not GUARD.enabled and GUARD.policy is None
