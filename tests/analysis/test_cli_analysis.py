"""Tests for ``python -m repro lint`` and ``python -m repro sanitize``."""

import textwrap

from repro.__main__ import main
from repro.analysis.cli import cmd_sanitize
from repro.config import ANALYSIS


def test_help_lists_analysis_commands(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "lint" in out and "sanitize" in out


# --- lint --------------------------------------------------------------------

def test_lint_shipped_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "pd-lint: clean" in capsys.readouterr().out


def test_lint_rules_flag_prints_table(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "PD001" in out and "PD006" in out


def test_lint_unknown_option_exits_two(capsys):
    assert main(["lint", "--rulez"]) == 2
    assert "unknown option" in capsys.readouterr().out


def test_lint_violation_fixture_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "core" / "rogue.py"
    bad.parent.mkdir()
    bad.write_text(textwrap.dedent("""\
        class RoguePico(PicoDriver):
            def fast_poke(self, task, addr):
                yield self.lwk._offload(task, "poke", (addr,))
        """))
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PD001" in out and "finding(s)" in out


# --- sanitize ----------------------------------------------------------------

def test_sanitize_usage_and_unknown_experiment(capsys):
    assert main(["sanitize"]) == 2
    assert "usage:" in capsys.readouterr().out
    assert main(["sanitize", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_sanitize_shipped_experiment_is_clean(capsys):
    assert main(["sanitize", "contention"]) == 0
    out = capsys.readouterr().out
    assert "== KSan verdict ==" in out
    assert "KSan: no cross-kernel races detected" in out
    assert "no races" in out
    assert ANALYSIS.race_detection is False   # restored afterwards


def _racy_experiment():
    """A deliberately broken 'experiment': writes SDMA engine state from
    McKernel without taking ``hfi1.sdma_submit``."""
    from repro.config import OSConfig
    from repro.core.structs import StructView
    from repro.experiments import build_machine
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    node = machine.nodes[0]
    rogue = StructView(node.pico.layouts["sdma_state"], node.node.kheap,
                       node.driver.engine_states[0].addr)
    rogue.set("current_state", 0)
    return "rogue write issued"


def test_sanitize_reports_seeded_race(capsys):
    assert cmd_sanitize(["racy"], {"racy": _racy_experiment}) == 1
    out = capsys.readouterr().out
    assert "race on sdma_state.current_state" in out
    assert "lockset intersection is empty" in out
    assert "1 cross-kernel race(s) detected" in out
    assert ANALYSIS.race_detection is False   # restored even on findings
