"""Tests for ``python -m repro lint`` and ``python -m repro sanitize``."""

import textwrap

from repro.__main__ import main
from repro.analysis.cli import cmd_sanitize
from repro.config import ANALYSIS


def test_help_lists_analysis_commands(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "lint" in out and "sanitize" in out


# --- lint --------------------------------------------------------------------

def test_lint_shipped_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "pd-lint: clean" in capsys.readouterr().out


def test_lint_rules_flag_prints_table(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "PD001" in out and "PD006" in out


def test_lint_unknown_option_exits_two(capsys):
    assert main(["lint", "--rulez"]) == 2
    assert "unknown option" in capsys.readouterr().out


def test_lint_violation_fixture_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "core" / "rogue.py"
    bad.parent.mkdir()
    bad.write_text(textwrap.dedent("""\
        class RoguePico(PicoDriver):
            def fast_poke(self, task, addr):
                yield self.lwk._offload(task, "poke", (addr,))
        """))
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PD001" in out and "finding(s)" in out


# --- sanitize ----------------------------------------------------------------

def test_sanitize_usage_and_unknown_experiment(capsys):
    assert main(["sanitize"]) == 2
    assert "usage:" in capsys.readouterr().out
    assert main(["sanitize", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_sanitize_shipped_experiment_is_clean(capsys):
    assert main(["sanitize", "contention"]) == 0
    out = capsys.readouterr().out
    assert "== KSan verdict ==" in out
    assert "KSan: no cross-kernel races detected" in out
    assert "no races" in out
    assert ANALYSIS.race_detection is False   # restored afterwards


def _racy_experiment():
    """A deliberately broken 'experiment': writes SDMA engine state from
    McKernel without taking ``hfi1.sdma_submit``."""
    from repro.config import OSConfig
    from repro.core.structs import StructView
    from repro.experiments import build_machine
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    node = machine.nodes[0]
    rogue = StructView(node.pico.layouts["sdma_state"], node.node.kheap,
                       node.driver.engine_states[0].addr)
    rogue.set("current_state", 0)
    return "rogue write issued"


def test_sanitize_reports_seeded_race(capsys):
    assert cmd_sanitize(["racy"], {"racy": _racy_experiment}) == 1
    out = capsys.readouterr().out
    assert "race on sdma_state.current_state" in out
    assert "lockset intersection is empty" in out
    assert "1 cross-kernel race(s) detected" in out
    assert ANALYSIS.race_detection is False   # restored even on findings


# --- lockgraph ---------------------------------------------------------------

def test_lockgraph_shipped_tree_exits_zero(capsys):
    assert main(["lockgraph"]) == 0
    out = capsys.readouterr().out
    assert "declared hierarchy:" in out
    assert "hfi1.sdma_submit" in out
    assert "lockgraph: acyclic and hierarchy-clean" in out


def test_lockgraph_dot_output(capsys):
    assert main(["lockgraph", "--dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "hfi1.sdma_submit" in out


def test_lockgraph_unknown_option_exits_two(capsys):
    assert main(["lockgraph", "--dotty"]) == 2
    assert "unknown option" in capsys.readouterr().out


def test_lockgraph_flags_abba_fixture(tmp_path, capsys):
    bad = tmp_path / "abba.py"
    bad.write_text(textwrap.dedent("""\
        dispatch = CrossKernelSpinLock(sim, heap, name="mckernel.dispatch")
        sdma = CrossKernelSpinLock(sim, heap, name="hfi1.sdma_submit")

        def linux_path(self):
            yield from dispatch.acquire("linux", aspace)
            yield from sdma.acquire("linux", aspace)
            sdma.release("linux")
            dispatch.release("linux")

        def mck_path(self):
            yield from sdma.acquire("mckernel", aspace)
            yield from dispatch.acquire("mckernel", aspace)
            dispatch.release("mckernel")
            sdma.release("mckernel")
        """))
    assert main(["lockgraph", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PD008" in out
    assert "cycle" in out


# --- lockdep -----------------------------------------------------------------

def _lockdep_machine(abba):
    """A miniature 'experiment' with its own registered validator."""
    from repro.analysis.lockdep import LockdepValidator
    from repro.core import linux_layout, mckernel_unified_layout
    from repro.core.sync import CrossKernelSpinLock
    from repro.hw import SharedHeap
    from repro.sim import Simulator

    sim = Simulator()
    heap = SharedHeap(65536)
    validator = LockdepValidator(sim, name="fixture.lockdep")
    heap.add_monitor(validator)
    sim.wait_monitor = validator
    dispatch = CrossKernelSpinLock(sim, heap, name="mckernel.dispatch")
    sdma = CrossKernelSpinLock(sim, heap, name="hfi1.sdma_submit")
    linux = linux_layout()
    mck = mckernel_unified_layout()

    def single(lock, kernel, aspace, start):
        yield sim.timeout(start)
        yield from lock.acquire(kernel, aspace)
        lock.release(kernel)

    def nested(lock1, lock2, kernel, aspace, start):
        yield sim.timeout(start)
        yield from lock1.acquire(kernel, aspace)
        yield from lock2.acquire(kernel, aspace)
        lock2.release(kernel)
        lock1.release(kernel)

    if abba:
        sim.process(nested(dispatch, sdma, "linux", linux, 0.0))
        sim.process(nested(sdma, dispatch, "mckernel", mck, 1.0))
    else:
        sim.process(single(sdma, "linux", linux, 0.0))
        sim.process(single(dispatch, "mckernel", mck, 1.0))
    sim.run()
    return "fixture ran"


def test_lockdep_usage_and_unknown_experiment(capsys):
    from repro.analysis.cli import cmd_lockdep
    assert cmd_lockdep([], {}) == 2
    assert "usage:" in capsys.readouterr().out
    assert cmd_lockdep(["nope"], {}) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_lockdep_clean_experiment_exits_zero(capsys):
    from repro.analysis.cli import cmd_lockdep
    rc = cmd_lockdep(["quiet"], {"quiet": lambda: _lockdep_machine(False)})
    out = capsys.readouterr().out
    assert rc == 0
    assert "no lock-order hazards" in out
    assert ANALYSIS.lockdep is False  # restored afterwards


def test_lockdep_reports_seeded_abba(capsys):
    from repro.analysis.cli import cmd_lockdep
    rc = cmd_lockdep(["abba"], {"abba": lambda: _lockdep_machine(True)})
    out = capsys.readouterr().out
    assert rc == 1
    assert "order-cycle" in out or "cycle" in out
    assert "hierarchy" in out
    assert "linux" in out and "mckernel" in out
    assert ANALYSIS.lockdep is False  # restored even on findings


# --- lint --jobs -------------------------------------------------------------

def test_lint_jobs_parallel_matches_serial(capsys):
    assert main(["lint", "--jobs", "2"]) == 0
    assert "pd-lint: clean" in capsys.readouterr().out


def test_lint_jobs_option_validation(capsys):
    assert main(["lint", "--jobs"]) == 2
    assert "--jobs needs a worker count" in capsys.readouterr().out
    assert main(["lint", "--jobs", "many"]) == 2
    assert "not a number" in capsys.readouterr().out


def test_lint_jobs_parallel_reports_findings(tmp_path, capsys):
    bad = tmp_path / "core" / "rogue.py"
    bad.parent.mkdir()
    bad.write_text(textwrap.dedent("""\
        class RoguePico(PicoDriver):
            def fast_poke(self, task, addr):
                yield self.lwk._offload(task, "poke", (addr,))
        """))
    ok = tmp_path / "core" / "fine.py"
    ok.write_text("x = 1\n")
    assert main(["lint", "--jobs", "2", str(bad), str(ok)]) == 1
    assert "PD001" in capsys.readouterr().out
