"""Tests for the KSan cross-kernel lockset race detector.

Covers the Eraser state machine on synthetic heaps, the end-to-end
seeded violation (a rogue driver writing ``Hfi1Driver`` SDMA ring state
from McKernel without the shared lock), and the no-false-positive
guarantee on the shipped ping-pong workload in all three OS configs.
"""

import pytest

from repro.analysis.ksan import (ACTIVE_DETECTORS, RaceDetector,
                                 active_race_reports,
                                 reset_active_detectors)
from repro.config import (ALL_CONFIGS, ANALYSIS, OSConfig,
                          enable_race_detection)
from repro.core import (CrossKernelSpinLock, linux_layout,
                        mckernel_unified_layout)
from repro.core.structs import CStructDef, Field, StructInstance, StructView, U32
from repro.hw import SharedHeap
from repro.sim import Simulator
from repro.units import MiB

from tests.integration.test_three_configs import make_pair, transfer_once


def make_detector():
    sim = Simulator()
    heap = SharedHeap(65536)
    det = RaceDetector(sim=sim, register=False)
    heap.monitor = det
    return sim, heap, det


def make_views(heap, fields=("head", "tail")):
    """The same struct seen from both kernels (unified address space)."""
    defn = CStructDef("ring", [Field(f, U32) for f in fields])
    linux = StructInstance(defn, heap, kernel="linux")
    mck = StructInstance(defn, heap, addr=linux.addr, kernel="mckernel")
    return linux, mck


# --- the Eraser state machine on synthetic heaps -----------------------------

def test_exclusive_phase_never_alarms():
    """Single-kernel initialisation writes (Linux probe()) are exempt."""
    sim, heap, det = make_detector()
    linux, _ = make_views(heap)
    for value in range(5):
        linux.set("head", value)
        linux.set("tail", value)
    assert det.races == []
    assert det.words_tracked() == 2


def test_unlocked_cross_kernel_write_is_a_race():
    sim, heap, det = make_detector()
    linux, mck = make_views(heap)
    linux.set("head", 1)            # exclusive phase
    mck.set("head", 2)              # shares the word with no lock held
    assert len(det.races) == 1
    report = det.races[0]
    assert report.label == "ring.head"
    assert {a.kernel for a in report.accesses} == {"linux", "mckernel"}
    assert all(a.kind == "write" for a in report.accesses)


def test_read_only_sharing_is_not_a_race():
    """One writer + a foreign reader is the paper's publish pattern."""
    sim, heap, det = make_detector()
    linux, mck = make_views(heap)
    linux.set("head", 7)
    assert mck.get("head") == 7
    assert mck.get("head") == 7
    assert det.races == []


def test_atomic_rmw_is_exempt():
    """atomic_t-style counters (LOCK XADD) are race-free without a lock."""
    sim, heap, det = make_detector()
    linux, mck = make_views(heap)
    linux.set("head", 0)
    assert mck.add("head", 1) == 1
    assert linux.add("head", -1) == 0
    assert mck.add("head", 1) == 1
    assert det.races == []


def test_lock_protected_cross_kernel_writes_are_clean():
    sim, heap, det = make_detector()
    lock = CrossKernelSpinLock(sim, heap, name="shared")
    linux, mck = make_views(heap)

    def writer(view, kernel, aspace):
        yield from lock.acquire(kernel, aspace)
        try:
            view.set("head", view.get("head") + 1)
        finally:
            lock.release(kernel)

    sim.run(until=sim.process(writer(linux, "linux", linux_layout())))
    sim.run(until=sim.process(
        writer(mck, "mckernel", mckernel_unified_layout())))
    sim.run(until=sim.process(writer(linux, "linux", linux_layout())))
    assert det.races == []
    assert linux.get("head") == 3


def test_forgetting_the_lock_once_is_caught():
    """Consistent locking then ONE unlocked write empties the candidate
    lockset — the classic Eraser violation."""
    sim, heap, det = make_detector()
    lock = CrossKernelSpinLock(sim, heap, name="shared")
    linux, mck = make_views(heap)

    def locked(view, kernel, aspace):
        yield from lock.acquire(kernel, aspace)
        try:
            view.set("head", 1)
        finally:
            lock.release(kernel)

    sim.run(until=sim.process(locked(linux, "linux", linux_layout())))
    sim.run(until=sim.process(
        locked(mck, "mckernel", mckernel_unified_layout())))
    assert det.races == []
    linux.set("head", 9)            # the one forgotten lock
    assert len(det.races) == 1
    assert det.races[0].label == "ring.head"


def test_lock_word_itself_never_alarms():
    """Both kernels hammer the lock word, but with atomic annotations."""
    sim, heap, det = make_detector()
    lock = CrossKernelSpinLock(sim, heap, name="l0")

    def cycle(kernel, aspace):
        yield from lock.acquire(kernel, aspace)
        lock.release(kernel)

    sim.run(until=sim.process(cycle("linux", linux_layout())))
    sim.run(until=sim.process(cycle("mckernel", mckernel_unified_layout())))
    assert det.races == []


def test_one_report_per_word():
    sim, heap, det = make_detector()
    linux, mck = make_views(heap)
    linux.set("head", 1)
    for value in range(4):
        mck.set("head", value)
        linux.set("head", value)
    assert len(det.races) == 1


def test_unattributed_accesses_are_counted_not_analysed():
    sim, heap, det = make_detector()
    addr = heap.kmalloc(8)
    heap.write_u(addr, 4, 1)        # raw poke, no annotation
    heap.read_u(addr, 4)
    assert det.unattributed >= 2
    assert det.words_tracked() == 0
    assert det.races == []


def test_report_render_carries_full_provenance():
    sim, heap, det = make_detector()
    linux, mck = make_views(heap)
    linux.set("tail", 1)
    mck.set("tail", 2)
    text = det.races[0].render()
    assert "race on ring.tail" in text
    assert "lockset intersection is empty" in text
    assert "linux" in text and "mckernel" in text
    assert "test_ksan.py" in text   # both access sites point here
    assert "no races" not in det.summary()


def test_detector_registry_and_aggregation():
    reset_active_detectors()
    try:
        det = RaceDetector()        # registers itself
        assert ACTIVE_DETECTORS == [det]
        heap = SharedHeap(4096)
        heap.monitor = det
        linux, mck = make_views(heap)
        linux.set("head", 1)
        mck.set("head", 2)
        assert active_race_reports() == det.races
        assert len(active_race_reports()) == 1
    finally:
        reset_active_detectors()
    assert active_race_reports() == []


# --- machine-level: the seeded violation and the shipped workloads -----------

@pytest.fixture
def sanitized():
    """Enable KSan installation for machines built inside the test."""
    reset_active_detectors()
    enable_race_detection(True)
    yield
    enable_race_detection(False)
    reset_active_detectors()


def test_machine_installs_one_detector_per_node(sanitized):
    machine = make_pair(OSConfig.MCKERNEL_HFI)[0]
    assert len(machine.sanitizers) == 2
    assert all(node.node.kheap.monitor is det
               for node, det in zip(machine.nodes, machine.sanitizers))


def test_machines_carry_no_detector_by_default():
    machine = make_pair(OSConfig.MCKERNEL_HFI)[0]
    assert machine.sanitizers == []
    assert machine.nodes[0].node.kheap.monitor is None
    assert machine.race_reports() == []


def test_rogue_unlocked_sdma_write_is_reported(sanitized):
    """The seeded violation: a test driver writes Hfi1Driver SDMA ring
    state from McKernel without taking ``hfi1.sdma_submit`` — KSan must
    report it with both access sites."""
    from repro.experiments import build_machine
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    node = machine.nodes[0]
    rogue = StructView(node.pico.layouts["sdma_state"], node.node.kheap,
                       node.driver.engine_states[0].addr)  # kernel="mckernel"
    rogue.set("current_state", 0)   # no sdma_submit lock held
    reports = machine.race_reports()
    assert len(reports) == 1
    report = reports[0]
    assert report.label == "sdma_state.current_state"
    assert {a.kernel for a in report.accesses} == {"linux", "mckernel"}
    sites = " ".join(a.site for a in report.accesses)
    assert "driver.py" in sites     # the Linux probe() initialisation
    assert "test_ksan.py" in sites  # the rogue McKernel write


def test_locked_sdma_write_is_clean(sanitized):
    """The same write is race-free when the shared lock is held."""
    from repro.experiments import build_machine
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    node = machine.nodes[0]
    view = StructView(node.pico.layouts["sdma_state"], node.node.kheap,
                      node.driver.engine_states[0].addr)

    def body():
        yield from node.driver.sdma_lock.acquire(
            "mckernel", node.mckernel.aspace)
        try:
            view.set("go_s99_running", 1)
        finally:
            node.driver.sdma_lock.release("mckernel")

    machine.sim.run(until=machine.sim.process(body()))
    assert machine.race_reports() == []


@pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.value)
def test_shipped_pingpong_is_race_free(sanitized, cfg):
    """The acceptance bar: zero reports across the real workload, which
    exercises offloads, the fast path, completions and foreign frees."""
    machine, s, r = make_pair(cfg)
    transfer_once(machine, s, r, 2 * MiB)
    machine.sim.run()
    assert machine.race_reports() == []
    if cfg is OSConfig.MCKERNEL_HFI:
        # the fast path really was analysed, not silently skipped
        assert any(det.words_tracked() > 10 for det in machine.sanitizers)


def test_race_detection_flag_restored_by_fixture():
    """Guard against fixture leakage into the perf-sensitive default."""
    assert ANALYSIS.race_detection is False
