"""Tests for the PicoDriver protocol lint (PD001-PD016).

Each rule gets a violation fixture and a compliant twin; the suite also
pins the suppression syntax and — the acceptance bar — that the shipped
``src/repro`` tree lints clean.
"""

import textwrap

from repro.analysis.lint import (RULES, Finding, default_lint_root,
                                 iter_python_files, lint_paths, lint_source,
                                 rules_table)


def lint(src, path="src/repro/mckernel/x.py"):
    """Lint a dedented fixture; default path is outside repro/core so
    PD005 stays quiet unless a test opts in."""
    return lint_source(textwrap.dedent(src), path)


def codes(findings):
    return [f.code for f in findings]


# --- PD001 fast-path purity --------------------------------------------------

def test_pd001_offload_reachable_from_fast_path():
    findings = lint("""\
        class BadPico(PicoDriver):
            def fast_writev(self, task, fd):
                yield from self._send(task)

            def _send(self, task):
                yield from self.lwk._offload(task, "writev", ())
        """)
    assert codes(findings) == ["PD001"]
    assert "_offload" in findings[0].message
    assert "reachable from fast_writev" in findings[0].message


def test_pd001_ikc_call_in_fast_path():
    findings = lint("""\
        class BadPico(PicoDriver):
            def fast_ioctl(self, task, fd, cmd, arg):
                yield from self.lwk.ikc.call(task, cmd)
        """)
    assert codes(findings) == ["PD001"]


def test_pd001_clean_when_offload_is_on_the_slow_path():
    findings = lint("""\
        class GoodPico(PicoDriver):
            def claims(self, syscall, args):
                return FastPathDecision.offload("administrative")

            def slow_ioctl(self, task, cmd):
                yield from self.lwk._offload(task, "ioctl", (cmd,))

            def fast_writev(self, task, fd):
                yield self.lwk.sim.timeout(1.0)
        """)
    assert findings == []


# --- PD002 lock discipline ---------------------------------------------------

def test_pd002_acquire_without_release():
    findings = lint("""\
        def submit(self, group):
            yield from self.lock.acquire("mckernel", self.aspace)
            yield from self.engine.submit(group)
        """)
    assert codes(findings) == ["PD002"]
    assert "no matching" in findings[0].message


def test_pd002_release_outside_finally():
    findings = lint("""\
        def submit(self, group):
            yield from self.lock.acquire("mckernel", self.aspace)
            yield from self.engine.submit(group)
            self.lock.release("mckernel")
        """)
    assert codes(findings) == ["PD002"]
    assert "finally" in findings[0].message


def test_pd002_clean_try_finally():
    findings = lint("""\
        def submit(self, group):
            yield from self.lock.acquire("mckernel", self.aspace)
            try:
                yield from self.engine.submit(group)
            finally:
                self.lock.release("mckernel")
        """)
    assert findings == []


def test_pd002_tracks_distinct_receivers():
    """Releasing lock A does not excuse leaking lock B."""
    findings = lint("""\
        def submit(self, group):
            yield from self.a.acquire("linux", self.aspace)
            yield from self.b.acquire("linux", self.aspace)
            try:
                yield from self.engine.submit(group)
            finally:
                self.a.release("linux")
        """)
    assert codes(findings) == ["PD002"]
    assert "'self.b.acquire'" in findings[0].message


# --- PD003 sim-process hygiene -----------------------------------------------

def test_pd003_fast_method_not_a_generator():
    findings = lint("""\
        class BadPico(PicoDriver):
            def fast_ioctl(self, task, fd, cmd, arg):
                return 0
        """)
    assert codes(findings) == ["PD003"]
    assert "not a generator" in findings[0].message


def test_pd003_bare_generator_call_discards_process():
    findings = lint("""\
        class Pico:
            def fast_send(self, task):
                yield self.sim.timeout(1.0)
                self._drain()

            def _drain(self):
                yield self.sim.timeout(2.0)
        """)
    assert codes(findings) == ["PD003"]
    assert "silently discarded" in findings[0].message


def test_pd003_yield_from_is_the_fix():
    findings = lint("""\
        class Pico:
            def fast_send(self, task):
                yield from self._drain()

            def _drain(self):
                yield self.sim.timeout(2.0)
        """)
    assert findings == []


# --- PD004 layout-version guard ----------------------------------------------

def test_pd004_structview_without_version_guard():
    findings = lint("""\
        class BadPico(PicoDriver):
            def attach(self, lwk):
                self.view = StructView(self.layouts["sdma_state"],
                                       lwk.node.kheap, 0)

            def fast_read(self, task):
                yield self.view.get("current_state")
        """)
    assert codes(findings) == ["PD004"]
    assert "require_layout_version" in findings[0].message


def test_pd004_guarded_class_is_clean():
    findings = lint("""\
        class GoodPico(PicoDriver):
            def attach(self, lwk):
                layout = dwarf_extract_struct(self.module, "s", ["f"])
                self.require_layout_version(layout, self.version)
                self.view = StructView(layout, lwk.node.kheap, 0)

            def fast_read(self, task):
                yield self.view.get("f")
        """)
    assert findings == []


# --- PD005 raw heap confinement ----------------------------------------------

RAW_HEAP_SRC = """\
    def peek(self, addr):
        return self.heap.read_u(addr, 4)
    """


def test_pd005_raw_heap_in_core():
    findings = lint(RAW_HEAP_SRC, path="src/repro/core/rogue.py")
    assert codes(findings) == ["PD005"]
    assert "self.heap.read_u" in findings[0].message


def test_pd005_blessed_modules_and_other_packages_exempt():
    assert lint(RAW_HEAP_SRC, path="src/repro/core/structs.py") == []
    assert lint(RAW_HEAP_SRC, path="src/repro/core/sync.py") == []
    assert lint(RAW_HEAP_SRC, path="src/repro/linux/hfi1/driver.py") == []


# --- PD006 pinned-memory discipline ------------------------------------------

def test_pd006_get_user_pages_in_fast_path():
    findings = lint("""\
        class BadPico(PicoDriver):
            def fast_reg(self, task, vaddr, length):
                pages = self.lwk.mm.get_user_pages(vaddr, length)
                yield pages
        """)
    assert codes(findings) == ["PD006"]
    assert "get_user_pages" in findings[0].message


def test_pd006_slow_path_may_take_page_refs():
    findings = lint("""\
        class Driver:
            def fast_reg(self, task, vaddr, length):
                yield task.pagetable.phys_spans(vaddr, length)

            def linux_reg(self, task, vaddr, length):
                return self.mm.get_user_pages(vaddr, length)
        """)
    assert findings == []


# --- PD007 fault-hook gating -------------------------------------------------

def test_pd007_unguarded_fires():
    findings = lint("""\
        def transmit(self, packet):
            if self.injector.fires("fabric.drop"):
                return
        """)
    assert codes(findings) == ["PD007"]
    assert "self.injector.fires" in findings[0].message


def test_pd007_boolop_guard_idiom_is_clean():
    """The hooks' actual shape: FAULTS appears earlier in the same
    ``and`` chain as the draw."""
    findings = lint("""\
        def transmit(self, packet):
            inj = self.injector
            if FAULTS.enabled and inj is not None and inj.fires("fabric.drop"):
                return
        """)
    assert findings == []


def test_pd007_enclosing_if_guard_is_clean():
    findings = lint("""\
        def submit(self):
            if config.FAULTS.enabled:
                if self.inj.fires("sdma.desc_error"):
                    self.halt("boom")
        """)
    assert findings == []


def test_pd007_else_branch_is_not_guarded():
    findings = lint("""\
        def submit(self):
            if FAULTS.enabled:
                pass
            else:
                self.inj.fires("irq.lost")
        """)
    assert codes(findings) == ["PD007"]


def test_pd007_fires_before_the_faults_operand_is_flagged():
    """Short-circuit order matters: the draw must come after the FAULTS
    check, or disabled runs still consume RNG numbers."""
    findings = lint("""\
        def f(self):
            if self.inj.fires("irq.lost") and FAULTS.enabled:
                return
        """)
    assert codes(findings) == ["PD007"]


# --- PD011 trace-hook gating -------------------------------------------------

def test_pd011_unguarded_span_emission():
    findings = lint("""\
        def syscall(self, task, name):
            span = TRACE.collector.begin_span("x", "t")
            yield from self._dispatch(task, name)
            TRACE.collector.end_span(span)
        """)
    assert codes(findings) == ["PD011", "PD011"]
    assert "span emission" in findings[0].message
    assert "config.TRACE" in findings[0].message


def test_pd011_conditional_expression_idiom_is_clean():
    """The hooks' actual begin shape: the emission sits in the then-arm
    of an ``... if TRACE.enabled else None`` expression."""
    findings = lint("""\
        def syscall(self, task, name):
            span = TRACE.collector.begin_span(
                "x", "t") if TRACE.enabled else None
            try:
                yield from self._dispatch(task, name)
            finally:
                if TRACE.enabled and span is not None:
                    TRACE.collector.end_span(span)
        """)
    assert findings == []


def test_pd011_enclosing_if_guard_is_clean():
    findings = lint("""\
        def _rx(self, pkt):
            if TRACE.enabled:
                TRACE.collector.instant_span("psm.rx", "t")
                TRACE.collector.add_flow(a, b)
        """)
    assert findings == []


def test_pd011_covers_the_whole_emission_surface():
    findings = lint("""\
        def f(self):
            TRACE.collector.instant_span("a", "t")
            TRACE.collector.complete_span("b", "t", 0.0, 1.0)
            TRACE.collector.add_flow(x, y)
        """)
    assert codes(findings) == ["PD011"] * 3


def test_pd011_exempts_the_obs_subsystem():
    """The collector and exporters call the emission surface
    unconditionally — by design."""
    src = """\
        def instant_span(self, name, track):
            span = self.begin_span(name, track, detached=True)
            self.end_span(span)
            return span
        """
    assert lint(src, path="src/repro/obs/spans.py") == []
    assert codes(lint(src, path="src/repro/psm/x.py")) == ["PD011"] * 2


def test_pd011_else_branch_is_not_guarded():
    findings = lint("""\
        def f(self):
            if TRACE.enabled:
                pass
            else:
                TRACE.collector.instant_span("a", "t")
        """)
    assert codes(findings) == ["PD011"]


# --- suppression -------------------------------------------------------------

def test_bare_pd_ignore_suppresses_everything():
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  # pd-ignore")
    assert lint(src, path="src/repro/core/rogue.py") == []


def test_targeted_suppression_matches_code():
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  # pd-ignore[PD005]")
    assert lint(src, path="src/repro/core/rogue.py") == []


def test_targeted_suppression_of_other_code_does_not_apply():
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  # pd-ignore[PD001, PD004]")
    # the PD005 finding survives, and the mistargeted suppression is
    # itself reported as stale (PD100)
    assert codes(lint(src, path="src/repro/core/rogue.py")) == \
        ["PD005", "PD100"]


# --- machinery ---------------------------------------------------------------

def test_findings_are_sorted_and_render_with_hints():
    findings = lint("""\
        class BadPico(PicoDriver):
            def fast_a(self, task):
                return self.lwk._offload(task, "a", ())
        """)
    # PD003 anchors on the def line, PD001 on the call: line order wins
    assert codes(findings) == ["PD003", "PD001"]
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    rendered = findings[-1].render()
    assert "PD001" in rendered and "(fix: " in rendered
    assert findings[-1].hint == RULES["PD001"][1]


def test_syntax_error_is_a_finding_not_a_crash():
    findings = lint_source("def broken(:\n", path="bad.py")
    assert codes(findings) == ["PD000"]
    assert "syntax error" in findings[0].message
    assert "PD000" in findings[0].render()


def test_rules_table_lists_every_code():
    table = rules_table()
    for code in RULES:
        assert code in table
    assert len(RULES) >= 5


def test_iter_python_files_expands_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "b.txt").write_text("not python\n")
    (tmp_path / "c.py").write_text("y = 2\n")
    found = iter_python_files([str(tmp_path)])
    assert [f.rsplit("/", 1)[-1] for f in found] == ["c.py", "a.py"]


def test_finding_is_a_value_object():
    f = Finding("p.py", 1, 0, "PD001", "m")
    assert f == Finding("p.py", 1, 0, "PD001", "m")


# --- the acceptance bar ------------------------------------------------------

def test_shipped_tree_lints_clean():
    """``python -m repro lint`` must exit zero on the repository itself;
    this is the tier-1 enforcement of that contract."""
    assert lint_paths([default_lint_root()]) == []


# --- PD008 lock-order hierarchy ----------------------------------------------

def test_pd008_rank_violating_nesting():
    findings = lint("""\
        dispatch = CrossKernelSpinLock(sim, heap, name="mckernel.dispatch")
        sdma = CrossKernelSpinLock(sim, heap, name="hfi1.sdma_submit")

        def bad(self):
            yield from sdma.acquire("mckernel", aspace)
            yield from dispatch.acquire("mckernel", aspace)
            try:
                yield from self.engine.submit(group)
            finally:
                dispatch.release("mckernel")
                sdma.release("mckernel")
        """)
    assert "PD008" in codes(findings)
    pd008 = next(f for f in findings if f.code == "PD008")
    assert "mckernel.dispatch" in pd008.message
    assert "hfi1.sdma_submit" in pd008.message


def test_pd008_rank_respecting_nesting_is_clean():
    findings = lint("""\
        dispatch = CrossKernelSpinLock(sim, heap, name="mckernel.dispatch")
        sdma = CrossKernelSpinLock(sim, heap, name="hfi1.sdma_submit")

        def good(self):
            yield from dispatch.acquire("mckernel", aspace)
            yield from sdma.acquire("mckernel", aspace)
            try:
                yield from self.engine.submit(group)
            finally:
                sdma.release("mckernel")
                dispatch.release("mckernel")
        """)
    assert findings == []


# --- PD009 no timed wait in critical section ---------------------------------

def test_pd009_timed_wait_while_held():
    findings = lint("""\
        def submit(self, group):
            yield from self.lock.acquire("mckernel", self.aspace)
            try:
                yield self.sim.timeout(1.0)
            finally:
                self.lock.release("mckernel")
        """)
    assert codes(findings) == ["PD009"]
    assert "timeout" in findings[0].message


def test_pd009_clean_after_release():
    findings = lint("""\
        def submit(self, group):
            yield from self.lock.acquire("mckernel", self.aspace)
            try:
                yield from self.engine.submit(group)
            finally:
                self.lock.release("mckernel")
            yield self.sim.timeout(1.0)
        """)
    assert findings == []


# --- PD100 unused suppressions -----------------------------------------------

def test_pd100_bare_unused_suppression():
    findings = lint("""\
        def f(self):
            return self.x  # pd-ignore
        """)
    assert codes(findings) == ["PD100"]
    assert "suppresses nothing" in findings[0].message


def test_pd100_quiet_when_suppression_is_used():
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  # pd-ignore")
    assert lint(src, path="src/repro/core/rogue.py") == []


def test_pd100_ignores_prose_mentions_of_the_marker():
    findings = lint('''\
        def f(self):
            """Docs may discuss pd-ignore without tripping PD100."""
            return self.x
        ''')
    assert findings == []


# --- PD012 controlled-scheduler gating ---------------------------------------

def test_pd012_unguarded_hook_calls():
    findings = lint("""\
        def step(self):
            pick = self.scheduler.choose_ready(self.now, ready)
            self.scheduler.on_step_begin(self.now, 0, evt)
        """)
    assert codes(findings) == ["PD012", "PD012"]
    assert "controlled-scheduler hook" in findings[0].message
    assert "check" in findings[0].message


def test_pd012_scheduler_none_guard_is_clean():
    """The engine's actual idiom: the hook calls live in the body of
    ``if self.scheduler is not None``."""
    findings = lint("""\
        def step(self):
            if self.scheduler is not None:
                pick = self.scheduler.choose_ready(self.now, ready)
                self.scheduler.on_step_begin(self.now, 0, evt)
                self.scheduler.on_step_end()
        """)
    assert findings == []


def test_pd012_analysis_check_guard_is_clean():
    findings = lint("""\
        def _deliver(self, event):
            if ANALYSIS.check:
                self.sim.scheduler.on_process_resumed(self)
        """)
    assert findings == []


def test_pd012_else_branch_is_not_guarded():
    findings = lint("""\
        def step(self):
            if self.scheduler is not None:
                pass
            else:
                self.scheduler.on_step_end()
        """)
    assert codes(findings) == ["PD012"]


def test_pd012_exempts_the_checker_itself():
    """The explorer and its fixtures drive the hooks unconditionally
    by design (``repro/analysis/check*.py``)."""
    src = """\
        def execute(self):
            self.scheduler.on_step_begin(0.0, 0, evt)
        """
    assert lint(src, path="src/repro/analysis/check.py") == []
    assert lint(src, path="src/repro/analysis/check_fixtures.py") == []
    assert codes(lint(src, path="src/repro/sim/engine.py")) == ["PD012"]


# --- PD013 guard-hook gating --------------------------------------------------

def test_pd013_unguarded_hook_calls():
    findings = lint("""\
        def writev(self, task, fd):
            engine = self.guard.pick_healthy_engine(self.hfi)
            self.guard.record_failure("engine0", "halt")
        """)
    assert codes(findings) == ["PD013", "PD013"]
    assert "guard-plane hook" in findings[0].message
    assert "config.GUARD" in findings[0].message


def test_pd013_guard_enabled_gate_is_clean():
    findings = lint("""\
        def submit(self, group):
            if GUARD.enabled and self.gate is not None:
                yield from self.gate.acquire_slots(len(group.descriptors))
        """)
    assert findings == []


def test_pd013_guard_is_none_test_is_clean():
    """The dispatcher idiom: resolve the manager once under
    ``GUARD.enabled``, then test the local for installation."""
    findings = lint("""\
        def fast_writev(self, task, fd):
            guard = self.linux_driver.guard if GUARD.enabled else None
            if guard is not None:
                yield from guard.park_if_suspended()
                guard.record_success("engine0")
        """)
    assert findings == []


def test_pd013_else_branch_is_not_guarded():
    findings = lint("""\
        def submit(self):
            if guard is not None:
                pass
            else:
                guard.record_failure("engine0")
        """)
    assert codes(findings) == ["PD013"]


def test_pd013_exempts_the_guard_package_itself():
    """The manager delegates to its own breakers unconditionally by
    design (``repro/guard/*``)."""
    src = """\
        def record_success(self, path):
            self.breakers[path].record_success()
        """
    assert lint(src, path="src/repro/guard/manager.py") == []
    assert codes(lint(src, path="src/repro/hw/hfi.py")) == ["PD013"]


def test_pd013_in_rules_table():
    assert "PD013" in RULES
    assert "PD013" in rules_table()


# --- PD014 storage recovery-hook gating ---------------------------------------

def test_pd014_unguarded_probe_kick():
    findings = lint("""\
        def _blk_complete(self, head):
            self._maybe_probe()
            self.breakers[0].begin_probe()
        """, path="src/repro/linux/pxd/driver.py")
    assert codes(findings) == ["PD014", "PD014"]
    assert "storage recovery hook" in findings[0].message
    assert "config.GUARD" in findings[0].message


def test_pd014_guard_gates_are_clean():
    findings = lint("""\
        def _blk_complete(self, head):
            if GUARD.enabled:
                self._maybe_probe()

        def drill(self):
            guard = self.guard if GUARD.enabled else None
            if guard is not None:
                yield from guard.suspend()
                guard.resume()
        """, path="src/repro/linux/pxd/driver.py")
    assert findings == []


def test_pd014_scoped_to_the_storage_stack():
    """``suspend``/``resume`` are generic names; outside the pxd stack
    the rule must stay quiet."""
    src = """\
        def drill(self):
            yield from self.guard0.suspend()
            self.guard0.resume()
        """
    assert lint(src) == []
    assert codes(lint(src, path="src/repro/core/pxd_pico.py")) \
        == ["PD014", "PD014"]


def test_pd014_blockdev_device_model_is_exempt():
    """The device only moves bytes — its watchdog redelivery path runs
    unconditionally, guard plane or not."""
    src = """\
        def _deliver(self, io):
            self._maybe_probe()
        """
    assert lint(src, path="src/repro/hw/blockdev.py") == []


def test_pd014_in_rules_table():
    assert "PD014" in RULES
    assert "PD014" in rules_table()


# --- PD016 tune-hook gating ---------------------------------------------------

def test_pd016_unguarded_probe_hook():
    findings = lint("""\
        def build(self):
            self.probe.on_machine_built(self)
        """, path="src/repro/experiments/common.py")
    assert codes(findings) == ["PD016"]
    assert "PicoTune probe hook" in findings[0].message
    assert "config.TUNE" in findings[0].message


def test_pd016_tune_enabled_gate_is_clean():
    findings = lint("""\
        def build(self):
            if TUNE.enabled and TUNE.probe is not None:
                TUNE.probe.on_machine_built(self)
        """, path="src/repro/experiments/common.py")
    assert findings == []


def test_pd016_probe_is_none_test_is_clean():
    findings = lint("""\
        def build(self):
            probe = TUNE.probe if TUNE.enabled else None
            if probe is not None:
                probe.on_machine_built(self)
        """, path="src/repro/experiments/common.py")
    assert findings == []


def test_pd016_exempts_the_tune_package_itself():
    src = """\
        def evaluate(self, point, seed):
            probe.on_machine_built(machine)
        """
    assert lint(src, path="src/repro/tune/env.py") == []
    assert codes(lint(src, path="src/repro/experiments/common.py")) \
        == ["PD016"]


def test_pd016_in_rules_table():
    assert "PD016" in RULES
    assert "PD016" in rules_table()


# --- dotted rule ids and the PD015 family ------------------------------------

def test_code_matches_exact_and_family_prefix():
    from repro.analysis.lint import code_matches
    assert code_matches("PD015.2", "PD015.2")
    assert code_matches("PD015.2", "PD015")     # family prefix
    assert not code_matches("PD015", "PD015.2")  # prefix is one-way
    assert not code_matches("PD0152", "PD015")   # dot-bounded, not substring


def test_dotted_suppression_is_not_a_blanket_ignore():
    """A dotted id inside the brackets must parse as a *targeted*
    suppression; under the pre-dot grammar the bracket group failed to
    match and the comment degraded to a suppress-everything bare
    ``pd-ignore``, silently hiding unrelated findings."""
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  # pd-ignore[PD015.5]")
    assert "PD005" in codes(lint(src, path="src/repro/core/rogue.py"))


def test_multi_rule_suppression_with_dotted_member():
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  # pd-ignore[PD005,PD015.2]")
    findings = lint(src, path="src/repro/core/rogue.py")
    # PD005 is suppressed; the PD015 member is vet's to judge, so lint
    # must not report it as stale either
    assert findings == []


def test_lint_leaves_pd015_staleness_to_vet():
    src = RAW_HEAP_SRC.replace("read_u(addr, 4)",
                               "read_u(addr, 4)  "
                               "# pd-ignore[PD005, PD015]")
    assert lint(src, path="src/repro/core/rogue.py") == []


def test_pd015_rules_in_table():
    for code in ("PD015.1", "PD015.2", "PD015.3", "PD015.4", "PD015.5",
                 "PD015.6"):
        assert code in RULES
        assert code in rules_table()
