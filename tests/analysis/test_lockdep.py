"""Tests for PicoLockdep: the runtime deadlock validator, the static
lock-graph pass, and the consistency between the two views."""

import ast

import pytest

from repro.analysis.lockdep import (LockdepValidator, LockGraph,
                                    build_static_lock_graph,
                                    check_lock_order, in_irq, irq_enter,
                                    irq_exit, tag_irq_generator)
from repro.core import linux_layout, mckernel_unified_layout
from repro.core.lockclasses import REGISTRY, ensure_declarations
from repro.core.sync import CrossKernelSpinLock
from repro.errors import ReproError
from repro.hw import SharedHeap
from repro.sim import Simulator


def make_env():
    """A sim + heap with a registered validator and the two declared
    lock classes instantiated as real cross-kernel locks."""
    ensure_declarations()
    sim = Simulator()
    heap = SharedHeap(65536)
    validator = LockdepValidator(sim, name="test.lockdep", register=False)
    heap.add_monitor(validator)
    sim.wait_monitor = validator
    dispatch = CrossKernelSpinLock(sim, heap, name="mckernel.dispatch")
    submit = CrossKernelSpinLock(sim, heap, name="hfi1.sdma_submit")
    return sim, heap, validator, dispatch, submit


# --- dynamic view -------------------------------------------------------------

def test_lock_resolves_declared_class():
    _sim, _heap, _v, dispatch, submit = make_env()
    assert dispatch.lock_class.rank == 10
    assert submit.lock_class.rank == 20
    assert "core/hfi_pico" in submit.lock_class.users


def test_rank_respecting_nesting_is_clean():
    sim, _heap, validator, dispatch, submit = make_env()
    linux = linux_layout()

    def linux_path():
        yield from dispatch.acquire("linux", linux)
        yield from submit.acquire("linux", linux)
        submit.release("linux")
        dispatch.release("linux")

    sim.run(until=sim.process(linux_path()))
    assert validator.reports == []
    assert ("mckernel.dispatch", "hfi1.sdma_submit") \
        in validator.dependency_edges()


def test_abba_reported_with_both_sites_and_kernels():
    """The seeded AB-BA: Linux takes dispatch->submit (legal), McKernel
    takes submit->dispatch.  No hang occurs (the paths run at different
    times) yet the validator must report the cycle with both witness
    sites, both kernels and the sim timestamps."""
    sim, _heap, validator, dispatch, submit = make_env()
    linux = linux_layout()
    mck = mckernel_unified_layout()

    def linux_path():
        yield from dispatch.acquire("linux", linux)
        yield from submit.acquire("linux", linux)
        submit.release("linux")
        dispatch.release("linux")

    def mck_path():
        yield sim.timeout(1.0)
        yield from submit.acquire("mckernel", mck)
        yield from dispatch.acquire("mckernel", mck)
        dispatch.release("mckernel")
        submit.release("mckernel")

    sim.process(linux_path())
    sim.process(mck_path())
    sim.run()
    kinds = [r.kind for r in validator.reports]
    assert "order-cycle" in kinds
    assert "hierarchy-violation" in kinds
    cycle = next(r for r in validator.reports if r.kind == "order-cycle")
    text = cycle.render()
    # both acquisition sites (function names) and both kernels named
    assert "linux_path" in text and "mck_path" in text
    assert "linux" in text and "mckernel" in text
    assert "t=1" in text and "t=0" in text
    rank = next(r for r in validator.reports
                if r.kind == "hierarchy-violation")
    assert "rank 10" in rank.render() and "rank 20" in rank.render()


def test_cycle_reported_once_per_class_set():
    sim, _heap, validator, dispatch, submit = make_env()
    linux = linux_layout()
    mck = mckernel_unified_layout()

    def one(lock1, lock2, kernel, aspace, start):
        yield sim.timeout(start)
        yield from lock1.acquire(kernel, aspace)
        yield from lock2.acquire(kernel, aspace)
        lock2.release(kernel)
        lock1.release(kernel)

    sim.process(one(dispatch, submit, "linux", linux, 0.0))
    sim.process(one(submit, dispatch, "mckernel", mck, 1.0))
    sim.process(one(dispatch, submit, "linux", linux, 2.0))
    sim.process(one(submit, dispatch, "mckernel", mck, 3.0))
    sim.run()
    assert len([r for r in validator.reports
                if r.kind == "order-cycle"]) == 1


def test_held_across_wait_attributed_to_holder():
    sim, _heap, validator, _dispatch, submit = make_env()
    mck = mckernel_unified_layout()

    def body():
        yield from submit.acquire("mckernel", mck)
        yield sim.timeout(5.0)  # the peer kernel spins all 5 seconds
        submit.release("mckernel")

    sim.run(until=sim.process(body()))
    waits = [r for r in validator.reports if r.kind == "held-across-wait"]
    assert len(waits) == 1
    text = waits[0].render()
    assert "hfi1.sdma_submit" in text and "in body" in text
    assert "5" in waits[0].title


def test_unrelated_wait_is_not_attributed():
    """A timeout issued by a process that holds nothing must not be
    blamed on whoever happens to hold a lock at that instant."""
    sim, _heap, validator, _dispatch, submit = make_env()
    linux = linux_layout()
    wake = sim.event()

    def holder():
        yield from submit.acquire("linux", linux)
        yield wake  # untimed wait: this frame never issues a timeout
        submit.release("linux")

    def bystander():
        yield sim.timeout(1.0)  # timed waits while holding nothing
        yield sim.timeout(1.0)
        wake.succeed()

    hold = sim.process(holder())
    sim.process(bystander())
    sim.run()
    assert hold.exception is None
    assert [r for r in validator.reports
            if r.kind == "held-across-wait"] == []


def test_irq_inversion_reported():
    sim, _heap, validator, _dispatch, submit = make_env()
    linux = linux_layout()

    def process_side():
        yield from submit.acquire("linux", linux)
        submit.release("linux")

    def irq_side():
        yield sim.timeout(1.0)
        yield from submit.acquire("linux", linux)
        submit.release("linux")

    sim.process(process_side())
    sim.process(tag_irq_generator(irq_side(), "linux"))
    sim.run()
    inversions = [r for r in validator.reports
                  if r.kind == "irq-inversion"]
    assert len(inversions) == 1
    text = inversions[0].render()
    assert "[irq]" in text and "[process]" in text


def test_tag_irq_generator_brackets_each_resume_step():
    sim = Simulator()
    observed = []

    def handler():
        observed.append(in_irq("linux"))
        yield sim.timeout(1.0)
        observed.append(in_irq("linux"))
        return "done"

    def bystander():
        yield sim.timeout(0.5)
        observed.append(("bystander", in_irq("linux")))

    proc = sim.process(tag_irq_generator(handler(), "linux"))
    sim.process(bystander())
    sim.run()
    # in IRQ context during both handler steps, never while suspended
    assert observed == [True, ("bystander", False), True]
    assert proc.value == "done"
    assert not in_irq("linux")


def test_irq_exit_without_enter_rejected():
    irq_enter("testkernel")
    irq_exit("testkernel")
    with pytest.raises(ReproError):
        irq_exit("testkernel")


def test_summary_counts_acquisitions_and_edges():
    sim, _heap, validator, dispatch, submit = make_env()
    linux = linux_layout()

    def body():
        yield from dispatch.acquire("linux", linux)
        yield from submit.acquire("linux", linux)
        submit.release("linux")
        dispatch.release("linux")

    sim.run(until=sim.process(body()))
    summary = validator.summary()
    assert "no findings" in summary
    assert "2 acquisition(s)" in summary
    assert "1 dependency edge(s)" in summary


# --- static view --------------------------------------------------------------

ABBA_SRC = '''\
class AbbaDrivers:
    def setup(self, sim, heap):
        self.dispatch_lock = CrossKernelSpinLock(
            sim, heap, name="mckernel.dispatch")
        self.sdma_lock = CrossKernelSpinLock(
            sim, heap, name="hfi1.sdma_submit")

    def linux_path(self):
        yield from self.dispatch_lock.acquire("linux", self.aspace)
        yield from self.sdma_lock.acquire("linux", self.aspace)
        self.sdma_lock.release("linux")
        self.dispatch_lock.release("linux")

    def mck_path(self):
        yield from self.sdma_lock.acquire("mckernel", self.aspace)
        yield from self.dispatch_lock.acquire("mckernel", self.aspace)
        self.dispatch_lock.release("mckernel")
        self.sdma_lock.release("mckernel")
'''


def _static(source, path="src/repro/mckernel/x.py", graph=None):
    findings = []
    check_lock_order(path, ast.parse(source), findings, graph=graph)
    return findings


def test_static_abba_yields_pd008_and_cycle():
    ensure_declarations()
    graph = LockGraph()
    findings = _static(ABBA_SRC, graph=graph)
    assert [f.code for f in findings] == ["PD008"]
    assert "rank 10" in findings[0].message
    assert "mck_path" in findings[0].message
    assert graph.has_edge("mckernel.dispatch", "hfi1.sdma_submit")
    assert graph.has_edge("hfi1.sdma_submit", "mckernel.dispatch")
    cycles = graph.cycles()
    assert len(cycles) == 1
    funcs = {edge.func for edge in cycles[0]}
    assert funcs == {"AbbaDrivers.linux_path", "AbbaDrivers.mck_path"}
    kernels = {edge.kernel for edge in cycles[0]}
    assert kernels == {"linux", "mckernel"}


def test_static_resolves_class_via_registry_attr():
    """No constructor binding in sight: ``self.foo.sdma_lock`` resolves
    through the declared ``attrs`` map."""
    ensure_declarations()
    graph = LockGraph()
    _static('''\
def path(self):
    yield from self.driver.sdma_lock.acquire("mckernel", self.aspace)
    self.driver.sdma_lock.release("mckernel")
''', graph=graph)
    assert graph.ranks.get("hfi1.sdma_submit") == 20


def test_static_pd009_direct_and_through_helper():
    findings = _static('''\
class D:
    def direct(self):
        yield from self.lock.acquire("linux", self.aspace)
        yield self.sim.timeout(1.0)
        self.lock.release("linux")

    def outer(self):
        yield from self.lock.acquire("linux", self.aspace)
        yield from self._backoff()
        self.lock.release("linux")

    def _backoff(self):
        yield self.sim.timeout(2.0)
''')
    pd009 = [f for f in findings if f.code == "PD009"]
    assert len(pd009) == 2
    assert any("D.direct" in f.message for f in pd009)
    assert any("D._backoff" in f.message for f in pd009)


def test_static_release_before_wait_is_clean():
    findings = _static('''\
def path(self):
    yield from self.lock.acquire("linux", self.aspace)
    try:
        yield from self.engine.submit(group)
    finally:
        self.lock.release("linux")
    yield self.sim.timeout(1.0)
''')
    assert findings == []


def test_static_wait_in_except_branch_while_held_flagged():
    """The pre-refactor fast_writev shape: the except branch sleeps
    before the finally releases."""
    findings = _static('''\
def path(self):
    yield from self.lock.acquire("mckernel", self.aspace)
    try:
        yield from self.engine.submit(group)
    except DriverError:
        yield self.sim.timeout(cost)
        raise
    finally:
        self.lock.release("mckernel")
''')
    assert [f.code for f in findings] == ["PD009"]


def test_static_self_deadlock_is_pd008():
    findings = _static('''\
def path(self):
    yield from self.lock.acquire("linux", self.aspace)
    yield from self.lock.acquire("linux", self.aspace)
    self.lock.release("linux")
    self.lock.release("linux")
''')
    assert [f.code for f in findings] == ["PD008"]
    assert "already holding it" in findings[0].message


def test_static_anonymous_lock_pairs_do_not_fire_pd008():
    """Two undeclared locks have no ranks; nesting them is not a
    hierarchy violation (PD002 still polices their release paths)."""
    findings = _static('''\
def path(self):
    yield from self.a.acquire("linux", self.aspace)
    yield from self.b.acquire("linux", self.aspace)
    self.b.release("linux")
    self.a.release("linux")
''')
    assert findings == []


def test_shipped_tree_static_graph_is_clean():
    graph, findings = build_static_lock_graph()
    assert findings == []
    assert graph.cycles() == []
    assert graph.hierarchy_violations() == []
    assert graph.ranks["hfi1.sdma_submit"] == 20
    # both the Linux slow path and the pico fast path acquire it
    sites = " ".join(graph.sites["hfi1.sdma_submit"])
    assert "driver.py" in sites and "hfi_pico.py" in sites


def test_to_dot_renders_nodes_and_edges():
    ensure_declarations()
    graph = LockGraph()
    _static(ABBA_SRC, graph=graph)
    dot = graph.to_dot()
    assert "digraph" in dot
    assert '"mckernel.dispatch" -> "hfi1.sdma_submit"' in dot
    assert "rank 20" in dot


def test_hierarchy_table_lists_users():
    ensure_declarations()
    table = REGISTRY.hierarchy_table()
    assert "mckernel.dispatch" in table
    assert "core/hfi_pico" in table


# --- dynamic/static consistency ----------------------------------------------

def test_dynamic_abba_edges_are_subset_of_static(tmp_path):
    """The consistency contract of ``python -m repro lockdep``: every
    dependency edge the validator observes at runtime must appear in
    the static graph extracted from the same source shape."""
    fixture = tmp_path / "abba.py"
    fixture.write_text(ABBA_SRC)
    graph, _findings = build_static_lock_graph([str(fixture)])

    sim, _heap, validator, dispatch, submit = make_env()
    linux = linux_layout()
    mck = mckernel_unified_layout()

    def linux_path():
        yield from dispatch.acquire("linux", linux)
        yield from submit.acquire("linux", linux)
        submit.release("linux")
        dispatch.release("linux")

    def mck_path():
        yield sim.timeout(1.0)
        yield from submit.acquire("mckernel", mck)
        yield from dispatch.acquire("mckernel", mck)
        dispatch.release("mckernel")
        submit.release("mckernel")

    sim.process(linux_path())
    sim.process(mck_path())
    sim.run()
    dynamic = set(validator.dependency_edges())
    assert dynamic == {("mckernel.dispatch", "hfi1.sdma_submit"),
                       ("hfi1.sdma_submit", "mckernel.dispatch")}
    for src, dst in dynamic:
        assert graph.has_edge(src, dst)
