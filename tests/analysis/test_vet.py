"""Tests for ``python -m repro vet``: PicoVet's whole-program analysis."""

import json
import os
import textwrap

from repro.__main__ import COMMANDS, main
from repro.analysis import astcache
from repro.analysis.lint import lint_paths
from repro.analysis.vet import cmd_vet, vet_paths
from repro.config import ANALYSIS

from .vet_fixtures.lockedge_rig import run_rig

FIXTURES = os.path.join(os.path.dirname(__file__), "vet_fixtures")
SLEEPY = os.path.join(FIXTURES, "sleepy_fastpath.py")


# --- the shipped tree --------------------------------------------------------

def test_vet_shipped_tree_is_clean(capsys):
    assert main(["vet"]) == 0
    out = capsys.readouterr().out
    assert "pd-vet: clean" in out
    assert "fast-path entry point(s)" in out


def test_vet_dot_output(capsys):
    assert main(["vet", "--dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "fast_writev" in out


def test_vet_json_output(capsys):
    assert main(["vet", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    writev = [q for q in summary if q.endswith("HFIPicoDriver.fast_writev")]
    assert len(writev) == 1
    entry = summary[writev[0]]
    assert "lwk" in entry["contexts"]
    assert entry["effects"]["offloads"] == []
    assert entry["effects"]["sleeps"] == []
    assert any("sdma_submit" in a for a in entry["effects"]["acquires"])


def test_vet_unknown_option_exits_two(capsys):
    assert main(["vet", "--dotty"]) == 2
    assert "unknown option" in capsys.readouterr().out


def test_vet_help_lists_command(capsys):
    assert main([]) == 0
    assert "vet" in capsys.readouterr().out


# --- the seeded fixture: PD015 catches what PD001 cannot ---------------------

def test_seeded_fixture_caught_by_pd015(capsys):
    assert main(["vet", SLEEPY]) == 1
    out = capsys.readouterr().out
    assert "PD015.2" in out                   # transitive sleep
    assert "PD015.1" in out                   # cross-class offload
    assert "rcu_synchronize" in out
    # the witness chain names both hops to the sleeping callee
    assert "fast_writev -> SleepyPicoDriver._flush -> DrainRing.drain" in out


def test_seeded_fixture_invisible_to_local_lint():
    """The same file is *clean* under the local rules: PD001's self-call
    closure cannot follow the constructor-typed hop into DrainRing, so
    the whole-program pass is the only thing standing between the sin
    and the tree."""
    findings = lint_paths([SLEEPY])
    assert not any(f.code in ("PD001", "PD006") for f in findings)
    assert findings == []


def test_fixture_effects_are_transitive_not_local():
    program, _findings = vet_paths([SLEEPY])
    (entry,) = [q for q in program.functions
                if q.endswith("SleepyPicoDriver.fast_writev")]
    # locally pure ...
    assert not program.functions[entry].effect.sleeps
    # ... transitively sleeping, with the sin attributed to drain()
    transitive = program.effects[entry].sleeps
    assert any(s.what == "rcu_synchronize" for s in transitive)
    assert "lwk" in program.contexts[entry]


# --- suppressions ------------------------------------------------------------

def test_vet_suppression_and_family_prefix(tmp_path, capsys):
    bad = tmp_path / "hushed.py"
    bad.write_text(textwrap.dedent("""\
        class HushedPico:
            def fast_poke(self, task):  # pd-ignore[PD015]
                yield self.lwk.ikc.post(task, None)
        """))
    assert cmd_vet([str(bad)]) == 0
    assert "pd-vet: clean" in capsys.readouterr().out


def test_vet_stale_suppression_reports_pd100(tmp_path, capsys):
    lazy = tmp_path / "lazy.py"
    lazy.write_text(textwrap.dedent("""\
        class InnocentPico:
            def fast_noop(self, task):  # pd-ignore[PD015.5]
                return task
        """))
    assert cmd_vet([str(lazy)]) == 1
    out = capsys.readouterr().out
    assert "PD100" in out and "PD015.5" in out


# --- the crosscheck gate -----------------------------------------------------

def test_crosscheck_unknown_experiment_exits_two(capsys):
    assert cmd_vet(["--crosscheck", "nope"], {}) == 2
    assert "unknown experiment" in capsys.readouterr().out


def test_crosscheck_usage_without_name(capsys):
    assert cmd_vet(["--crosscheck"]) == 2
    assert "usage:" in capsys.readouterr().out


def test_crosscheck_contained_experiment_passes(capsys):
    rc = cmd_vet(["--crosscheck", "contention"], COMMANDS)
    out = capsys.readouterr().out
    assert rc == 0
    assert "every dynamic fact is contained" in out
    assert "heap access pair(s)" in out
    assert ANALYSIS.race_detection is False    # restored afterwards
    assert ANALYSIS.lockdep is False


def test_crosscheck_names_missing_lock_edge(capsys):
    """The failure path: a dynamic lock edge between classes no shipped
    file mentions must fail containment, naming the edge."""
    rc = cmd_vet(["--crosscheck", "rig"], {"rig": run_rig})
    out = capsys.readouterr().out
    assert rc == 1
    assert "lock edge rig.outer -> rig.inner" in out
    assert "missing from the static lock graph" in out
    assert "rig.outer acquired dynamically but has no static" in out
    assert "3 uncontained fact(s)" in out
    assert ANALYSIS.race_detection is False    # restored on failure too
    assert ANALYSIS.lockdep is False


# --- determinism: vet never perturbs the experiments -------------------------

def test_fig4_bit_identical_around_a_vet_run():
    from repro.experiments import run_fig4
    from repro.units import KiB
    sizes = (16 * KiB,)
    baseline = run_fig4(sizes=sizes, repetitions=1)
    assert main(["vet"]) == 0
    again = run_fig4(sizes=sizes, repetitions=1)
    assert again.series == baseline.series


# --- the shared AST cache ----------------------------------------------------

def test_astcache_reuses_parses():
    astcache.clear()
    first = astcache.parse_module(SLEEPY)
    hits_before = astcache.STATS["hits"]
    second = astcache.parse_module(SLEEPY)
    assert second is first
    assert astcache.STATS["hits"] == hits_before + 1


def test_astcache_invalidates_on_change(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n")
    first = astcache.parse_module(str(mod))
    assert first.ok
    mod.write_text("x = 2\n")
    os.utime(mod, (1, 1))  # force a different mtime even on fast writes
    second = astcache.parse_module(str(mod))
    assert second is not first
    assert second.source == "x = 2\n"


def test_astcache_records_syntax_errors(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    module = astcache.parse_module(str(broken))
    assert not module.ok
    assert module.error is not None
    assert module.tree is None
