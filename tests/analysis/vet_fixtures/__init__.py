"""Seeded fixtures for the PicoVet whole-program analysis tests.

``sleepy_fastpath`` is an *analysis-only* module: it is handed to
``vet``/``lint`` as a path and parsed, never executed.  It seeds
fast-path sins hidden behind cross-class call hops, which the
whole-program PD015.x checkers must catch and the local lint rules
provably cannot.

``lockedge_rig`` is a *runnable* module: a miniature experiment that
takes a dynamic lock dependency edge between lock classes no shipped
source file mentions, so ``vet --crosscheck`` must fail containment
and name the missing edge.
"""
