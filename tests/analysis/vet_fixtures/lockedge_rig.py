"""Runnable fixture: a dynamic lock edge the static graph lacks.

``run_rig`` builds a miniature machine — simulator, shared heap, its
own lockdep validator — and takes ``rig.outer`` then ``rig.inner``
nested.  Neither lock class appears anywhere in the shipped source
tree, so the static lock graph has neither the classes nor the
dependency edge; ``python -m repro vet --crosscheck`` over this rig
must therefore fail containment and name ``rig.outer -> rig.inner``.
"""


def run_rig() -> str:
    """The 'experiment' body handed to the crosscheck command table."""
    from repro.analysis.lockdep import LockdepValidator
    from repro.core import linux_layout
    from repro.core.sync import CrossKernelSpinLock
    from repro.hw import SharedHeap
    from repro.sim import Simulator

    sim = Simulator()
    heap = SharedHeap(65536)
    validator = LockdepValidator(sim, name="rig.lockdep")
    heap.add_monitor(validator)
    sim.wait_monitor = validator
    outer = CrossKernelSpinLock(sim, heap, name="rig.outer")
    inner = CrossKernelSpinLock(sim, heap, name="rig.inner")
    linux = linux_layout()

    def nested():
        yield from outer.acquire("linux", linux)
        yield from inner.acquire("linux", linux)
        inner.release("linux")
        outer.release("linux")

    sim.process(nested())
    sim.run()
    return "rig ran: rig.outer -> rig.inner taken nested"
