"""Analysis-only fixture: a fast path whose sins live two calls away.

``SleepyPicoDriver.fast_writev`` reaches ``rcu_synchronize`` through
``self._flush`` and then ``DrainRing.drain`` — one self-call hop plus
one constructor-typed-attribute hop into *another class*.  The local
lint's PD001 pass only follows self-calls within one class, so it can
see neither the sleep nor the IKC post behind ``OffloadChannel.kick``;
the interprocedural PD015.1/PD015.2 checkers must flag both at the
entry points.  This file is parsed by the analyses, never imported for
execution, so the undefined names inside the method bodies are fine.
"""


class DrainRing:
    """Holds the sleeping sin: ``drain`` waits for an RCU grace period."""

    def __init__(self, lwk):
        self.lwk = lwk

    def drain(self):
        """Quiesce the ring — blocks the caller for an unbounded time."""
        yield from rcu_synchronize(self.lwk)  # noqa: F821 — parsed only


class OffloadChannel:
    """Holds the offload sin: ``kick`` posts on the IKC channel."""

    def __init__(self, lwk):
        self.lwk = lwk

    def kick(self, task, payload):
        """Punt ``payload`` to the Linux side over IKC."""
        yield self.lwk.ikc.post(task, payload)


class SleepyPicoDriver:
    """A Pico chassis whose fast paths are only transitively impure."""

    def __init__(self, lwk):
        self.ring = DrainRing(lwk)
        self.channel = OffloadChannel(lwk)

    def fast_writev(self, task, fd, iov):
        """Looks pure locally; sleeps two calls deep (PD015.2)."""
        yield from self._flush(task)

    def _flush(self, task):
        """The innocent middleman between the entry and the sleep."""
        yield from self.ring.drain()

    def fast_ioctl(self, task, fd, arg):
        """Looks pure locally; offloads one class away (PD015.1)."""
        yield from self.channel.kick(task, arg)
