"""Tests for the IMB micro-benchmark suite (PingPong, PingPing, SendRecv)."""

import pytest

from repro.apps import PingPing, PingPong, SendRecv
from repro.config import ALL_CONFIGS, OSConfig
from repro.experiments import build_machine
from repro.units import KiB, MiB

SIZES = (8 * KiB, 256 * KiB, 2 * MiB)


def test_pingpong_needs_two_nodes():
    with pytest.raises(ValueError):
        PingPong(build_machine(1, OSConfig.LINUX))


def test_pingpong_bandwidth_monotone():
    machine = build_machine(2, OSConfig.LINUX)
    out = PingPong(machine, repetitions=3).run(SIZES)
    values = [out[s] for s in SIZES]
    assert values == sorted(values)
    assert all(v > 0 for v in values)


def test_pingping_slower_than_pingpong_per_direction():
    """Simultaneous sends share the wire: per-direction bandwidth at
    large sizes cannot beat the unidirectional ping-pong."""
    pp = PingPong(build_machine(2, OSConfig.LINUX), repetitions=3).run(
        [4 * MiB])[4 * MiB]
    bidi = PingPing(build_machine(2, OSConfig.LINUX), repetitions=3).run(
        [4 * MiB])[4 * MiB]
    assert bidi < pp
    assert bidi > 0.3 * pp         # but the engines do overlap work


def test_pingping_configs_ordering():
    values = {}
    for cfg in ALL_CONFIGS:
        values[cfg] = PingPing(build_machine(2, cfg),
                               repetitions=3).run([2 * MiB])[2 * MiB]
    assert values[OSConfig.MCKERNEL_HFI] > values[OSConfig.MCKERNEL]


def test_sendrecv_ring_runs_on_many_nodes():
    machine = build_machine(4, OSConfig.MCKERNEL_HFI)
    out = SendRecv(machine, repetitions=2).run([256 * KiB])
    assert out[256 * KiB] > 0
    # four ranks exchanged data: TIDs all reclaimed afterwards
    machine.sim.run()
    for node in machine.nodes:
        assert node.node.hfi.tids_in_use == 0


def test_sendrecv_needs_two_nodes():
    with pytest.raises(ValueError):
        SendRecv(build_machine(1, OSConfig.LINUX))
