"""Tests of the application signatures and the micro execution driver."""

import pytest

from repro.apps import (ALL_APPS, AppSpec, CollectivePhase, HACC,
                        HaloExchange, LAMMPS, MemChurn, NEKBONE, QBOX,
                        SweepPhase, UMT2013, run_micro)
from repro.apps.base import FileIO
from repro.config import OSConfig
from repro.errors import ReproError
from repro.experiments import build_machine
from repro.units import KiB


def test_all_five_coral_apps_registered():
    assert set(ALL_APPS) == {"LAMMPS", "Nekbone", "UMT2013", "HACC", "QBOX"}


def test_paper_rank_geometries():
    """Section 4.2's run configurations."""
    assert (LAMMPS.ranks_per_node, LAMMPS.threads_per_rank) == (64, 2)
    for spec in (NEKBONE, UMT2013, HACC, QBOX):
        assert (spec.ranks_per_node, spec.threads_per_rank) == (32, 4)


def test_qbox_needs_four_nodes():
    assert QBOX.min_nodes == 4


def test_hacc_builds_cartesian_topology():
    assert HACC.uses_cart
    assert not UMT2013.uses_cart


def test_umt_is_sweep_dominated():
    assert any(isinstance(p, SweepPhase) for p in UMT2013.phases)
    sweep = next(p for p in UMT2013.phases if isinstance(p, SweepPhase))
    # expected-receive sized: the syscall-heavy path
    from repro.params import default_params
    assert sweep.msg_bytes > default_params().psm.expected_threshold


def test_qbox_churns_memory():
    assert any(isinstance(p, MemChurn) for p in QBOX.phases)


def test_lammps_halos_stay_on_pio_path():
    from repro.params import default_params
    halo = next(p for p in LAMMPS.phases if isinstance(p, HaloExchange))
    assert halo.msg_bytes <= default_params().nic.pio_threshold


def test_spec_validation_rejects_bad_collective():
    spec = AppSpec(name="bad", ranks_per_node=1, threads_per_rank=1,
                   iterations=1, compute_seconds=1e-3,
                   phases=(CollectivePhase("gatherv"),))
    with pytest.raises(ReproError):
        spec.validate()


def test_ranks_for_weak_scaling():
    assert UMT2013.ranks_for(8) == 256
    assert LAMMPS.ranks_for(4) == 256


# --- micro driver: the same signatures run on the full DES stack ----------

def tiny_spec(**overrides):
    base = dict(name="tiny", ranks_per_node=2, threads_per_rank=1,
                iterations=2, compute_seconds=1e-4,
                phases=(HaloExchange(neighbors=1, msg_bytes=8 * KiB),
                        CollectivePhase("allreduce", nbytes=64),
                        MemChurn(mmaps=1, nbytes=64 * KiB),
                        FileIO(reads=1)))
    base.update(overrides)
    return AppSpec(**base)


@pytest.mark.parametrize("cfg", list(OSConfig), ids=lambda c: c.value)
def test_micro_driver_runs_all_phases(cfg):
    machine = build_machine(2, cfg)
    runtime, stats = run_micro(machine, tiny_spec())
    assert runtime > 2 * 1e-4                 # at least the compute time
    assert stats.time_in("Init") > 0
    assert stats.time_in("Allreduce") > 0
    assert stats.calls_to("Init") == 4


def test_micro_driver_sweep_and_collectives():
    machine = build_machine(2, OSConfig.LINUX)
    spec = tiny_spec(phases=(
        SweepPhase(stages=2, msg_bytes=8 * KiB),
        CollectivePhase("bcast", nbytes=1 * KiB),
        CollectivePhase("barrier"),
    ))
    runtime, stats = run_micro(machine, spec)
    # sweeps use persistent channels: Start/Wait/Request_free
    assert stats.time_in("Start") > 0
    assert stats.time_in("Wait") > 0
    assert stats.calls_to("Request_free") > 0
    assert stats.time_in("Bcast") > 0
    assert stats.time_in("Barrier") > 0


def test_micro_driver_compute_scale():
    machine = build_machine(1, OSConfig.LINUX)
    spec = tiny_spec(phases=(CollectivePhase("barrier"),),
                     compute_seconds=1e-3)
    runtime, _ = run_micro(machine, spec, compute_scale=0.1)
    machine2 = build_machine(1, OSConfig.LINUX)
    runtime2, _ = run_micro(machine2, spec)
    assert runtime < runtime2


def test_micro_mckernel_offloads_device_calls():
    machine = build_machine(2, OSConfig.MCKERNEL)
    _, stats = run_micro(machine, tiny_spec())
    assert machine.tracer.get_count("offload.calls") > 0
