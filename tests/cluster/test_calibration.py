"""Macro-vs-micro calibration: the closed-form cost model must agree
with the detailed discrete-event simulator where both apply (DESIGN.md
section 6)."""

import pytest

from repro.cluster.model import CommCostModel
from repro.config import OSConfig
from repro.experiments import build_machine
from repro.params import default_params
from repro.psm import Endpoint, TagMatcher
from repro.units import KiB, MiB


def micro_one_way(cfg, size):
    """One posted-receive message through the full DES; seconds."""
    params = default_params()
    m = build_machine(2, cfg, params=params)
    sim = m.sim
    t0, t1 = m.spawn_rank(0, 0, 0), m.spawn_rank(1, 0, 1)
    ep0 = Endpoint(sim, params, m.nodes[0].node.hfi, t0)
    ep1 = Endpoint(sim, params, m.nodes[1].node.hfi, t1)
    res = {}

    def rx():
        yield from ep1.open()
        buf = yield from t1.syscall("mmap", 2 * size)
        req = ep1.mq_irecv(TagMatcher(tag="t"), (buf, 2 * size))
        yield req.event
        res["done"] = sim.now

    def tx():
        yield from ep0.open()
        buf = yield from t0.syscall("mmap", 2 * size)
        while ep1.addr is None:
            yield sim.timeout(1e-6)
        yield sim.timeout(5e-5)  # let the receiver post first
        res["start"] = sim.now
        yield from ep0.mq_send(ep1.addr, "t", buf, size)

    prx = sim.process(rx())
    sim.process(tx())
    sim.run(until=prx)
    sim.run()
    return res["done"] - res["start"]


@pytest.mark.parametrize("cfg", list(OSConfig), ids=lambda c: c.value)
@pytest.mark.parametrize("size", [8 * KiB, 128 * KiB, 1 * MiB],
                         ids=["pio", "eager-sdma", "expected"])
def test_macro_latency_matches_detailed_simulator(cfg, size):
    """Uncontended message latency: macro within 25% of the DES."""
    micro = micro_one_way(cfg, size)
    macro = CommCostModel(default_params(), cfg).message(
        size, depth_per_cpu=1.0).latency
    assert 0.75 < macro / micro < 1.25, (cfg, size, micro, macro)


def test_macro_preserves_micro_config_ordering():
    """At expected-receive sizes both simulators agree on who wins."""
    size = 1 * MiB
    micro = {cfg: micro_one_way(cfg, size) for cfg in OSConfig}
    macro = {cfg: CommCostModel(default_params(), cfg).message(
        size, depth_per_cpu=1.0).latency for cfg in OSConfig}
    for times in (micro, macro):
        assert (times[OSConfig.MCKERNEL_HFI] < times[OSConfig.LINUX]
                < times[OSConfig.MCKERNEL])


def test_macro_wire_matches_observed_descriptor_behaviour():
    """The macro wire-time formula reproduces the DES descriptor counts
    (4KB vs 10KB requests) observed on real transfers."""
    params = default_params()
    for cfg, desc in ((OSConfig.LINUX, 4096),
                      (OSConfig.MCKERNEL_HFI, params.nic.sdma_max_request)):
        model = CommCostModel(params, cfg)
        assert model.desc_size() == desc
        m = build_machine(2, cfg, params=params)
        micro_one_way_machine(m, 1 * MiB)
        observed = m.tracer.get_mean("hfi.sdma_desc_bytes")
        windows = 1 * MiB / params.psm.window_size
        # mean descriptor size within 20% of the macro assumption
        assert abs(observed - min(desc, params.psm.window_size)) \
            / desc < 0.35


def micro_one_way_machine(m, size):
    """Drive one transfer on an existing machine (for tracer checks)."""
    params = m.params
    sim = m.sim
    t0, t1 = m.spawn_rank(0, 0, 0), m.spawn_rank(1, 0, 1)
    ep0 = Endpoint(sim, params, m.nodes[0].node.hfi, t0, tracer=m.tracer)
    ep1 = Endpoint(sim, params, m.nodes[1].node.hfi, t1, tracer=m.tracer)

    def rx():
        yield from ep1.open()
        buf = yield from t1.syscall("mmap", 2 * size)
        req = ep1.mq_irecv(TagMatcher(tag="t"), (buf, 2 * size))
        yield req.event

    def tx():
        yield from ep0.open()
        buf = yield from t0.syscall("mmap", 2 * size)
        while ep1.addr is None:
            yield sim.timeout(1e-6)
        yield from ep0.mq_send(ep1.addr, "t", buf, size)

    prx = sim.process(rx())
    sim.process(tx())
    sim.run(until=prx)
    sim.run()
