"""Contention calibration: the macro model's queueing closed form must
track the detailed simulator's measured offload amplification."""

import pytest

from repro.experiments.contention import run_contention


@pytest.fixture(scope="module")
def study():
    return run_contention(rank_counts=(1, 4, 8, 32))


def test_uncontended_latency_is_microseconds(study):
    assert study.measured[1] < 20e-6
    assert study.measured[4] == pytest.approx(study.measured[1], rel=0.05)


def test_amplification_explodes_beyond_os_cpu_count(study):
    """More ranks than OS CPUs: section 4.3's amplification."""
    assert study.amplification(8) > 5
    assert study.amplification(32) > 100


def test_amplification_monotone(study):
    values = [study.measured[n] for n in study.rank_counts]
    assert values == sorted(values)


def test_macro_closed_form_tracks_des(study):
    """Within 2.5x of the detailed simulator across the whole range —
    a closed-form FIFO approximation of an interleaved queue."""
    for n in study.rank_counts:
        ratio = study.predicted[n] / study.measured[n]
        assert 0.4 < ratio < 2.5, (n, ratio)


def test_render(study):
    text = study.render()
    assert "concurrent ranks" in text and "32" in text


def test_parallel_measurement_matches_serial(study):
    parallel = run_contention(rank_counts=(1, 4, 8, 32), workers=2)
    assert parallel.measured == study.measured
    assert parallel.predicted == study.predicted
