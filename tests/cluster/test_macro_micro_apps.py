"""Application-level cross-validation: the same AppSpec run through the
detailed DES (micro backend) and the macro model must agree on the
qualitative story — which OS wins, and where the time goes."""

from dataclasses import replace

import pytest

from repro.apps import AppSpec, CollectivePhase, HaloExchange, run_micro
from repro.cluster import simulate_app
from repro.config import ALL_CONFIGS, OSConfig
from repro.experiments import build_machine
from repro.params import default_params
from repro.units import KiB

SPEC = AppSpec(
    name="xval",
    ranks_per_node=4,
    threads_per_rank=1,
    iterations=2,
    compute_seconds=2e-3,
    phases=(
        HaloExchange(neighbors=2, msg_bytes=320 * KiB),  # expected path
        CollectivePhase("allreduce", nbytes=8),
    ),
    imbalance_cv=0.0,
)


def quiet_params():
    """Noise off: this validation targets the communication model, and at
    micro scale (a handful of ranks) a single heavy-tail noise draw would
    dominate the comparison."""
    params = default_params()
    return params.with_overrides(
        noise=replace(params.noise, tick_rate_hz=0.0, burst_rate_hz=0.0))


@pytest.fixture(scope="module")
def backends():
    micro = {}
    macro = {}
    params = quiet_params()
    for cfg in ALL_CONFIGS:
        machine = build_machine(2, cfg, params=params)
        runtime, stats = run_micro(machine, SPEC)
        micro[cfg] = (runtime, stats)
        macro[cfg] = simulate_app(SPEC, 2, cfg, params=params)
    return micro, macro


def _micro_loop(entry):
    """Solver-loop time: total minus mean per-rank Init (HFI pays extra
    setup by design — the Table 1 trade)."""
    runtime, stats = entry
    return runtime - stats.time_in("Init") / (2 * SPEC.ranks_per_node)


def test_backends_agree_on_config_ordering(backends):
    """Expected-path halos: McKernel slowest on both backends (on loop
    time, the paper's figure-of-merit basis)."""
    micro, macro = backends
    micro_rt = {c: _micro_loop(micro[c]) for c in ALL_CONFIGS}
    macro_rt = {c: macro[c].loop_runtime for c in ALL_CONFIGS}
    for rt in (micro_rt, macro_rt):
        assert rt[OSConfig.MCKERNEL] > rt[OSConfig.LINUX]
        assert rt[OSConfig.MCKERNEL] > rt[OSConfig.MCKERNEL_HFI]


def test_backends_agree_wait_dominates_mckernel_mpi(backends):
    micro, macro = backends
    micro_stats = micro[OSConfig.MCKERNEL][1]
    macro_res = macro[OSConfig.MCKERNEL]
    # Wait(+Waitall) is the largest non-Init MPI bucket on both backends
    m_wait = (micro_stats.time_in("Wait")
              + micro_stats.time_in("Waitall"))
    others = [micro_stats.time_in(c) for c in ("Isend", "Allreduce")]
    assert m_wait > max(others)
    macro_top = [r.call for r in macro_res.top_calls(2)]
    assert "Wait" in macro_top


def test_backends_agree_on_mckernel_penalty_scale(backends):
    """The McKernel/Linux runtime ratio agrees within a factor of two
    between the two backends."""
    micro, macro = backends
    micro_ratio = (micro[OSConfig.MCKERNEL][0]
                   / micro[OSConfig.LINUX][0])
    macro_ratio = (macro[OSConfig.MCKERNEL].runtime
                   / macro[OSConfig.LINUX].runtime)
    assert micro_ratio > 1.02 and macro_ratio > 1.02
    assert 0.5 < micro_ratio / macro_ratio < 2.0


def test_micro_mckernel_syscall_profile_is_driver_heavy(backends):
    """The micro backend's kernel profiler shows the Figure 8 shape for
    an expected-receive-heavy spec on McKernel."""
    machine = build_machine(2, OSConfig.MCKERNEL)
    run_micro(machine, SPEC)
    from repro.profiling import profile_from_tracer
    profile = profile_from_tracer(machine.tracer)
    driver = profile.share("ioctl") + profile.share("writev")
    assert driver > 0.4
