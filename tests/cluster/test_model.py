"""Unit tests of the macro cost model's structure and monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.model import (CommCostModel, collective_rounds,
                                 off_node_fraction)
from repro.config import OSConfig
from repro.params import default_params
from repro.units import KiB, MiB, PAGE_SIZE


@pytest.fixture(params=list(OSConfig), ids=lambda c: c.value)
def model(request):
    return CommCostModel(default_params(), request.param)


def linux_model():
    return CommCostModel(default_params(), OSConfig.LINUX)


def pico_model():
    return CommCostModel(default_params(), OSConfig.MCKERNEL_HFI)


def mck_model():
    return CommCostModel(default_params(), OSConfig.MCKERNEL)


def test_desc_size_by_config():
    p = default_params()
    assert linux_model().desc_size() == PAGE_SIZE
    assert mck_model().desc_size() == PAGE_SIZE
    assert pico_model().desc_size() == p.nic.sdma_max_request


def test_wire_time_descriptor_penalty():
    """The Figure 4 mechanism in closed form."""
    l, h = linux_model(), pico_model()
    assert l.wire_time(4 * MiB) > h.wire_time(4 * MiB)
    ratio = l.wire_time(4 * MiB) / h.wire_time(4 * MiB)
    assert 1.05 < ratio < 1.25


def test_writev_handler_pico_cheaper():
    assert (pico_model().writev_handler(256 * KiB)
            < linux_model().writev_handler(256 * KiB))


def test_tid_update_pico_cheaper():
    """Large pages collapse per-page pinning+programming."""
    l, h = linux_model(), pico_model()
    assert h.tid_update_handler(256 * KiB) < 0.3 * l.tid_update_handler(256 * KiB)


def test_driver_call_placement():
    p = default_params()
    handler = 5e-6
    # Linux: native
    vis, dem = linux_model().driver_call(handler, True, 0.0)
    assert dem == 0.0 and vis == pytest.approx(p.syscall.linux_entry + handler)
    # pico fast path: local
    vis, dem = pico_model().driver_call(handler, True, 8.0)
    assert dem == 0.0 and vis == pytest.approx(p.syscall.lwk_entry + handler)
    # mckernel: offloaded with demand
    vis, dem = mck_model().driver_call(handler, True, 1.0)
    assert dem > handler
    assert vis > p.ikc.round_trip


def test_offload_contention_inflates_visibly():
    m = mck_model()
    quiet, _ = m.driver_call(5e-6, True, 1.0)
    stormy, stormy_dem = m.driver_call(5e-6, True, 8.0)
    assert stormy > 5 * quiet
    # the switch penalty also inflates the service (CPU demand)
    _, quiet_dem = m.driver_call(5e-6, True, 1.0)
    assert stormy_dem > quiet_dem


def test_message_transport_selection(model):
    p = default_params()
    pio = model.message(8 * KiB)
    assert pio.node_cpu_demand == 0.0 and not pio.syscalls
    eager = model.message(128 * KiB)
    assert [s[0] for s in eager.syscalls] == ["writev"]
    expected = model.message(1 * MiB)
    names = [s[0] for s in expected.syscalls]
    assert names == ["writev", "ioctl", "ioctl"]
    windows = -(-1 * MiB // p.psm.window_size)
    assert expected.syscalls[0][1] == windows


def test_message_latency_ordering_large():
    """pico < linux < mckernel for expected-receive messages."""
    lat = {cfg: CommCostModel(default_params(), cfg).message(
        1 * MiB, depth_per_cpu=4.0).latency for cfg in OSConfig}
    assert lat[OSConfig.MCKERNEL_HFI] < lat[OSConfig.LINUX]
    assert lat[OSConfig.LINUX] < lat[OSConfig.MCKERNEL]


def test_pio_messages_identical_across_configs():
    msgs = [CommCostModel(default_params(), cfg).message(16 * KiB)
            for cfg in OSConfig]
    assert len({m.latency for m in msgs}) == 1


def test_mmap_times_shadow_unmap():
    """McKernel munmap pays the proxy shadow sync; Linux does not."""
    l = linux_model().mmap_times(1 * MiB)
    m = mck_model().mmap_times(1 * MiB)
    assert m["munmap"][0] > l["munmap"][0]
    assert m["munmap"][1] > 0.0          # offload demand
    assert l["munmap"][1] == 0.0
    assert m["mmap"][1] == 0.0           # lwk-local mmap


def test_tlb_factor():
    assert linux_model().tlb_factor() == 1.0
    assert mck_model().tlb_factor() < 1.0


def test_off_node_fraction_shape():
    assert off_node_fraction(1) == 0.0
    assert 0 < off_node_fraction(2) < off_node_fraction(256) <= 0.9


def test_collective_rounds():
    assert collective_rounds("barrier", 1) == 0
    assert collective_rounds("allreduce", 8) == 3
    assert collective_rounds("bcast", 9) == 4
    assert collective_rounds("alltoallv", 8) == 7
    with pytest.raises(ValueError):
        collective_rounds("gather", 8)


@given(nbytes=st.integers(1, 8 * MiB), depth=st.floats(0.0, 32.0))
@settings(max_examples=80)
def test_message_costs_nonnegative_and_consistent(nbytes, depth):
    for cfg in OSConfig:
        m = CommCostModel(default_params(), cfg).message(nbytes, depth)
        assert m.latency > 0
        assert m.sender_time >= 0 and m.receiver_time >= 0
        assert m.wire >= 0 and m.node_cpu_demand >= 0
        assert m.latency >= m.wire * 0  # sanity: finite
        for _name, count, visible in m.syscalls:
            assert count >= 1 and visible > 0


@given(size_a=st.integers(1, 4 * MiB), size_b=st.integers(1, 4 * MiB))
@settings(max_examples=60)
def test_wire_time_monotone_in_size(size_a, size_b):
    m = linux_model()
    lo, hi = sorted((size_a, size_b))
    assert m.wire_time(lo) <= m.wire_time(hi)
