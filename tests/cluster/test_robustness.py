"""Property-based robustness of the macro simulator: arbitrary (valid)
application signatures must simulate without error and with consistent
accounting on every configuration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import (AppSpec, CollectivePhase, FileIO, HaloExchange,
                             MemChurn, SweepPhase)
from repro.cluster import simulate_app
from repro.config import ALL_CONFIGS
from repro.units import KiB, MiB

phase_strategy = st.one_of(
    st.builds(HaloExchange,
              neighbors=st.integers(1, 8),
              msg_bytes=st.sampled_from([4 * KiB, 96 * KiB, 320 * KiB,
                                         2 * MiB]),
              rounds=st.integers(1, 2)),
    st.builds(SweepPhase,
              stages=st.integers(1, 12),
              msg_bytes=st.sampled_from([16 * KiB, 256 * KiB, 1 * MiB]),
              active_fraction=st.sampled_from([0.25, 0.5, 1.0])),
    st.builds(CollectivePhase,
              kind=st.sampled_from(["barrier", "allreduce", "bcast",
                                    "alltoallv", "allgather", "scan"]),
              nbytes=st.sampled_from([8, 1 * KiB, 128 * KiB, 512 * KiB]),
              count=st.integers(1, 2)),
    st.builds(MemChurn, mmaps=st.integers(1, 4),
              nbytes=st.sampled_from([64 * KiB, 2 * MiB])),
    st.builds(FileIO, reads=st.integers(1, 3)),
)

spec_strategy = st.builds(
    AppSpec,
    name=st.just("fuzz"),
    ranks_per_node=st.sampled_from([8, 32, 64]),
    threads_per_rank=st.just(2),
    iterations=st.integers(1, 3),
    compute_seconds=st.floats(1e-4, 50e-3),
    phases=st.tuples(phase_strategy, phase_strategy),
    imbalance_cv=st.floats(0.0, 0.2),
    lwk_compute_factor=st.floats(0.8, 1.0),
)


@given(spec=spec_strategy, n_nodes=st.sampled_from([1, 2, 16]))
@settings(max_examples=40, deadline=None)
def test_any_valid_spec_simulates_consistently(spec, n_nodes):
    for config in ALL_CONFIGS:
        result = simulate_app(spec, n_nodes, config)
        assert result.runtime > 0
        assert 0 <= result.init_seconds <= result.runtime
        assert result.loop_runtime > 0
        assert result.n_ranks == spec.ranks_per_node * n_nodes
        assert all(t >= 0 for t in result.mpi_time.values())
        assert all(t >= 0 for t in result.syscall_time.values())
        assert result.total_mpi_time <= result.total_runtime * 1.001
        for name, count in result.syscall_count.items():
            assert count >= 0


comm_phase_strategy = st.one_of(
    st.builds(HaloExchange,
              neighbors=st.integers(1, 8),
              msg_bytes=st.sampled_from([4 * KiB, 96 * KiB, 320 * KiB,
                                         2 * MiB])),
    st.builds(SweepPhase,
              stages=st.integers(1, 12),
              msg_bytes=st.sampled_from([16 * KiB, 256 * KiB, 1 * MiB])),
    st.builds(CollectivePhase,
              kind=st.sampled_from(["barrier", "allreduce", "bcast",
                                    "alltoallv", "allgather", "scan"]),
              nbytes=st.sampled_from([8, 128 * KiB, 512 * KiB])),
)

comm_spec_strategy = st.builds(
    AppSpec,
    name=st.just("fuzz-comm"),
    ranks_per_node=st.sampled_from([8, 32, 64]),
    threads_per_rank=st.just(2),
    iterations=st.integers(1, 3),
    compute_seconds=st.floats(1e-3, 50e-3),
    phases=st.tuples(comm_phase_strategy, comm_phase_strategy),
    imbalance_cv=st.floats(0.0, 0.2),
    lwk_compute_factor=st.floats(0.9, 1.0),
)


@given(spec=comm_spec_strategy)
@settings(max_examples=15, deadline=None)
def test_single_node_multikernel_never_collapses(spec):
    """The paper's single-node parity claim as a property: with no
    off-node traffic all communication is shared memory, so there is no
    driver offload storm and the multi-kernel stays near Linux.  (Holds
    for communication phases; I/O-only micro-specs legitimately pay
    non-driver offloads and are out of scope.)"""
    from repro.config import OSConfig
    linux = simulate_app(spec, 1, OSConfig.LINUX)
    mck = simulate_app(spec, 1, OSConfig.MCKERNEL)
    ratio = mck.loop_runtime / linux.loop_runtime
    assert ratio < 1.6
