"""Macro-simulator behaviour tests: the paper's headline claims as
assertions (the same properties EXPERIMENTS.md reports)."""

import pytest

from repro.apps import ALL_APPS, HACC, LAMMPS, NEKBONE, QBOX, UMT2013
from repro.cluster import simulate_app
from repro.config import ALL_CONFIGS, OSConfig


def rel(spec, n_nodes, config):
    linux = simulate_app(spec, n_nodes, OSConfig.LINUX)
    other = simulate_app(spec, n_nodes, config)
    return other.figure_of_merit / linux.figure_of_merit


def test_min_nodes_enforced():
    with pytest.raises(ValueError):
        simulate_app(QBOX, 2, OSConfig.LINUX)


def test_result_bookkeeping():
    r = simulate_app(UMT2013, 2, OSConfig.LINUX)
    assert r.n_ranks == 64
    assert r.runtime > r.init_seconds > 0
    assert r.loop_runtime == pytest.approx(r.runtime - r.init_seconds)
    assert r.total_runtime == pytest.approx(r.runtime * 64)
    assert r.total_mpi_time > 0
    assert sum(r.syscall_shares().values()) == pytest.approx(1.0)


def test_deterministic_given_seed():
    a = simulate_app(HACC, 4, OSConfig.LINUX)
    b = simulate_app(HACC, 4, OSConfig.LINUX)
    assert a.runtime == b.runtime
    assert a.mpi_time == b.mpi_time


# ---- Figure 5: no regression on LAMMPS / Nekbone -------------------------

def test_lammps_parity_all_configs():
    for n in (1, 8, 64):
        for cfg in (OSConfig.MCKERNEL, OSConfig.MCKERNEL_HFI):
            assert 0.95 < rel(LAMMPS, n, cfg) < 1.07, (n, cfg)


def test_nekbone_small_mckernel_win():
    assert rel(NEKBONE, 64, OSConfig.MCKERNEL) > 1.0
    assert rel(NEKBONE, 64, OSConfig.MCKERNEL_HFI) > 1.0


# ---- Figure 6a: the UMT2013 collapse --------------------------------------

def test_umt_single_node_parity():
    """Intra-node communication never touches the driver."""
    assert 0.93 < rel(UMT2013, 1, OSConfig.MCKERNEL) < 1.07
    assert 0.93 < rel(UMT2013, 1, OSConfig.MCKERNEL_HFI) < 1.07


def test_umt_mckernel_collapses_multinode():
    """Below ~40% of Linux at small multi-node counts, below ~25% at
    scale (paper: below 20% beyond 4 nodes)."""
    assert rel(UMT2013, 8, OSConfig.MCKERNEL) < 0.40
    assert rel(UMT2013, 128, OSConfig.MCKERNEL) < 0.25


def test_umt_hfi_beats_linux_multinode():
    assert rel(UMT2013, 8, OSConfig.MCKERNEL_HFI) > 1.0
    assert rel(UMT2013, 128, OSConfig.MCKERNEL_HFI) > 1.05


def test_umt_collapse_worsens_with_scale():
    assert (rel(UMT2013, 64, OSConfig.MCKERNEL)
            < rel(UMT2013, 2, OSConfig.MCKERNEL))


# ---- Figure 6b: HACC ---------------------------------------------------------

def test_hacc_single_node_parity():
    assert 0.95 < rel(HACC, 1, OSConfig.MCKERNEL) < 1.10


def test_hacc_mckernel_around_70_percent():
    values = [rel(HACC, n, OSConfig.MCKERNEL) for n in (2, 8, 32, 128)]
    avg = sum(values) / len(values)
    assert 0.60 < avg < 0.85          # paper: 71% on average


def test_hacc_hfi_beats_linux():
    for n in (2, 8, 64):
        assert rel(HACC, n, OSConfig.MCKERNEL_HFI) > 1.0, n


# ---- Figure 7: QBOX -----------------------------------------------------------

def test_qbox_mckernel_not_collapsed():
    """Unlike UMT, original-McKernel QBOX stays within ~35% of Linux."""
    for n in (4, 32, 256):
        assert rel(QBOX, n, OSConfig.MCKERNEL) > 0.65, n


def test_qbox_hfi_gains_grow_with_scale():
    small = rel(QBOX, 8, OSConfig.MCKERNEL_HFI)
    large = rel(QBOX, 256, OSConfig.MCKERNEL_HFI)
    assert large > small
    assert large > 1.10               # paper: up to +30%


# ---- Table 1 shapes ------------------------------------------------------------

@pytest.fixture(scope="module")
def profiles():
    out = {}
    for app in ("UMT2013", "HACC", "QBOX"):
        for cfg in ALL_CONFIGS:
            out[(app, cfg)] = simulate_app(ALL_APPS[app], 8, cfg)
    return out


def test_table1_mckernel_wait_explodes(profiles):
    """UMT/HACC: McKernel spends ~an order of magnitude more in Wait."""
    for app in ("UMT2013", "HACC"):
        wait_l = profiles[(app, OSConfig.LINUX)].mpi_time["Wait"]
        wait_m = profiles[(app, OSConfig.MCKERNEL)].mpi_time["Wait"]
        assert wait_m > 4 * wait_l, app


def test_table1_hfi_wait_below_linux(profiles):
    for app in ("UMT2013", "HACC"):
        wait_l = profiles[(app, OSConfig.LINUX)].mpi_time["Wait"]
        wait_h = profiles[(app, OSConfig.MCKERNEL_HFI)].mpi_time["Wait"]
        assert wait_h < wait_l, app


def test_table1_init_ordering(profiles):
    """Init(HFI) > Init(McKernel) > Init(Linux) for every app."""
    for app in ("UMT2013", "HACC", "QBOX"):
        i_l = profiles[(app, OSConfig.LINUX)].mpi_time["Init"]
        i_m = profiles[(app, OSConfig.MCKERNEL)].mpi_time["Init"]
        i_h = profiles[(app, OSConfig.MCKERNEL_HFI)].mpi_time["Init"]
        assert i_h > i_m > i_l, app


def test_table1_hacc_cart_create(profiles):
    """Linux's top HACC cost is Cart_create, ~3x the multi-kernels'."""
    linux = profiles[("HACC", OSConfig.LINUX)]
    assert linux.top_calls(1)[0].call == "Cart_create"
    cart_l = linux.mpi_time["Cart_create"]
    cart_m = profiles[("HACC", OSConfig.MCKERNEL)].mpi_time["Cart_create"]
    assert 2.0 < cart_l / cart_m < 4.0


def test_table1_mpi_fraction_shapes(profiles):
    """UMT: MPI is a modest share of Linux runtime but dominates the
    original McKernel's (paper: ~19% vs ~80%)."""
    linux = profiles[("UMT2013", OSConfig.LINUX)]
    mck = profiles[("UMT2013", OSConfig.MCKERNEL)]
    frac_l = linux.total_mpi_time / linux.total_runtime
    frac_m = mck.total_mpi_time / mck.total_runtime
    assert frac_l < 0.45
    assert frac_m > 0.60


# ---- Figures 8-9 shapes -----------------------------------------------------------

def test_fig8_umt_syscall_shapes(profiles):
    mck = profiles[("UMT2013", OSConfig.MCKERNEL)]
    hfi = profiles[("UMT2013", OSConfig.MCKERNEL_HFI)]
    shares_m = mck.syscall_shares()
    shares_h = hfi.syscall_shares()
    assert shares_m.get("ioctl", 0) + shares_m.get("writev", 0) > 0.70
    assert shares_h.get("ioctl", 0) + shares_h.get("writev", 0) < 0.30
    # total kernel time collapses (paper: to 7%)
    assert hfi.total_kernel_time < 0.15 * mck.total_kernel_time


def test_fig9_qbox_munmap_dominates_hfi(profiles):
    hfi = profiles[("QBOX", OSConfig.MCKERNEL_HFI)]
    shares = hfi.syscall_shares()
    assert max(shares, key=shares.get) == "munmap"
    mck = profiles[("QBOX", OSConfig.MCKERNEL)]
    # QBOX keeps more of its kernel time than UMT (paper: 25% vs 7%)
    assert (hfi.total_kernel_time / mck.total_kernel_time
            > 0.25)
