"""Tests for Figure 3: kernel VA layouts and their unification."""

import pytest

from repro.core import (KernelAddressSpace, Region, linux_layout,
                        mckernel_original_layout, mckernel_unified_layout,
                        unify_address_spaces)
from repro.core.address_space import (LINUX_DIRECT_MAP_BASE,
                                      LINUX_TEXT_BASE,
                                      MCK_UNIFIED_TEXT_BASE,
                                      MODULE_SPACE_END, validate_unification)
from repro.errors import LayoutError, PageFault


def test_region_basics():
    r = Region("x", 0x1000, 0x100)
    assert r.contains(0x1000) and r.contains(0x10FF)
    assert not r.contains(0x1100)
    assert r.overlaps(Region("y", 0x10FF, 1))
    assert not r.overlaps(Region("y", 0x1100, 1))


def test_duplicate_and_overlapping_regions_rejected():
    aspace = KernelAddressSpace("k", [Region("a", 0, 100)])
    with pytest.raises(LayoutError):
        aspace.add_region(Region("a", 200, 10))
    with pytest.raises(LayoutError):
        aspace.add_region(Region("b", 50, 100))


def test_original_mckernel_image_collides_with_linux():
    """The pre-PicoDriver problem: both kernel images at the same VA."""
    linux = linux_layout()
    mck = mckernel_original_layout()
    assert mck.regions["kernel_image"].start == LINUX_TEXT_BASE
    assert linux.regions["kernel_image"].overlaps(mck.regions["kernel_image"])


def test_original_mckernel_cannot_dereference_linux_kmalloc():
    mck = mckernel_original_layout()
    linux_heap_addr = LINUX_DIRECT_MAP_BASE + 0x1234
    with pytest.raises(PageFault):
        mck.check_access(linux_heap_addr, "hfi1 devdata pointer")


def test_unified_mckernel_dereferences_linux_kmalloc():
    mck = mckernel_unified_layout()
    assert mck.can_access(LINUX_DIRECT_MAP_BASE + 0x1234)


def test_unified_image_sits_at_top_of_module_space():
    mck = mckernel_unified_layout()
    img = mck.regions["kernel_image"]
    assert img.end - 1 == MODULE_SPACE_END
    assert img.start == MCK_UNIFIED_TEXT_BASE


def test_unify_transforms_original_into_unified():
    linux = linux_layout()
    mck = mckernel_original_layout()
    unify_address_spaces(linux, mck)
    ref = mckernel_unified_layout()
    assert (mck.regions["kernel_image"].start
            == ref.regions["kernel_image"].start)
    assert (mck.regions["direct_map"].start
            == linux.regions["direct_map"].start)
    # requirement 3: Linux sees McKernel TEXT
    assert linux.can_access(MCK_UNIFIED_TEXT_BASE + 0x10)
    assert "mckernel_image" in linux.regions


def test_unify_is_validated():
    linux = linux_layout()
    mck = mckernel_original_layout()
    unify_address_spaces(linux, mck)
    validate_unification(linux, mck)  # must not raise


def test_validate_rejects_original_layout():
    with pytest.raises(LayoutError):
        validate_unification(linux_layout(), mckernel_original_layout())


def test_validate_rejects_mismatched_direct_maps():
    linux = linux_layout()
    mck = mckernel_original_layout()
    unify_address_spaces(linux, mck)
    mck.replace_region("direct_map",
                       Region("direct_map", 0xFFFF_8000_0000_0000, 1 << 30))
    with pytest.raises(LayoutError, match="direct maps disagree"):
        validate_unification(linux, mck)


def test_validate_requires_linux_visibility_of_lwk_text():
    linux = linux_layout()
    mck = mckernel_original_layout()
    unify_address_spaces(linux, mck)
    del linux.regions["mckernel_image"]
    with pytest.raises(LayoutError, match="callbacks would fault"):
        validate_unification(linux, mck)


def test_user_space_identical_in_all_layouts():
    for aspace in (linux_layout(), mckernel_original_layout(),
                   mckernel_unified_layout()):
        user = aspace.regions["user"]
        assert user.start == 0
        assert user.end == 0x0000_8000_0000_0000


def test_shared_regions_after_unification():
    linux = linux_layout()
    mck = mckernel_original_layout()
    unify_address_spaces(linux, mck)
    shared = {a.name for a, b in mck.shared_regions(linux)}
    assert "direct_map" in shared
    assert "user" in shared


def test_replace_missing_region_rejected():
    aspace = KernelAddressSpace("k", [Region("a", 0, 10)])
    with pytest.raises(LayoutError):
        aspace.replace_region("zz", Region("zz", 100, 10))
