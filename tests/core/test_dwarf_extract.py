"""Tests for the mini-DWARF emitter and the dwarf-extract-struct tool —
including the paper's Listing 1 layout and the version-drift scenario that
motivates the whole workflow (section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ARRAY, ENUM, PTR, U8, U16, U32, U64, CStructDef,
                        Field, StructInstance, StructView,
                        dwarf_extract_struct, emit_dwarf, generate_header)
from repro.core import dwarf as D
from repro.errors import DwarfError, ReproError
from repro.hw import SharedHeap
from repro.linux.hfi1.debuginfo import build_module, struct_defs


def test_listing1_sdma_state_offsets():
    """The paper's Listing 1: current_state@40, go_s99_running@48,
    previous_state@52, whole struct 64 bytes (driver v1.0.0)."""
    binary = build_module("1.0.0")
    layout = dwarf_extract_struct(
        binary, "sdma_state",
        ["current_state", "go_s99_running", "previous_state"])
    assert layout.byte_size == 64
    assert layout.field("current_state").offset == 40
    assert layout.field("go_s99_running").offset == 48
    assert layout.field("previous_state").offset == 52


def test_listing1_generated_header_text():
    binary = build_module("1.0.0")
    layout = dwarf_extract_struct(
        binary, "sdma_state",
        ["current_state", "go_s99_running", "previous_state"])
    header = generate_header(layout)
    assert "char whole_struct[64];" in header
    assert "char padding0[40];" in header
    assert "enum sdma_states current_state;" in header
    assert "char padding1[48];" in header
    assert "unsigned int go_s99_running;" in header
    assert "char padding2[52];" in header
    assert "enum sdma_states previous_state;" in header


def test_version_drift_shifts_offsets():
    """A driver update changes embedded blob sizes; extraction tracks it."""
    old = dwarf_extract_struct(build_module("1.0.0"), "sdma_state",
                               ["current_state"])
    new = dwarf_extract_struct(build_module("1.1.1"), "sdma_state",
                               ["current_state"])
    assert old.field("current_state").offset == 40
    assert new.field("current_state").offset == 48
    assert new.byte_size > old.byte_size


def test_stale_manual_header_reads_garbage_dwarf_does_not():
    """End-to-end: the Linux driver (v1.1.1) writes a field; a hand-copied
    v1.0.0 layout misreads it, the freshly extracted layout reads it
    correctly — the exact failure mode of section 3.2."""
    heap = SharedHeap(4096, base=0)
    defs = struct_defs("1.1.1")
    inst = StructInstance(defs["sdma_state"], heap)
    inst.set("go_s99_running", 1)

    fresh = dwarf_extract_struct(build_module("1.1.1"), "sdma_state",
                                 ["go_s99_running"])
    stale = dwarf_extract_struct(build_module("1.0.0"), "sdma_state",
                                 ["go_s99_running"])
    assert StructView(fresh, heap, inst.addr).get("go_s99_running") == 1
    assert StructView(stale, heap, inst.addr).get("go_s99_running") != 1


def test_extraction_offsets_match_defs_for_all_structs():
    """Every extractable field of every driver struct, both versions."""
    for version in ("1.0.0", "1.1.1"):
        binary = build_module(version)
        for name, sdef in struct_defs(version).items():
            fields = [f.name for f in sdef.fields]
            layout = dwarf_extract_struct(binary, name, fields)
            assert layout.byte_size == sdef.size
            for f in sdef.fields:
                assert layout.field(f.name).offset == sdef.offset_of(f.name), \
                    f"{version} {name}.{f.name}"


def test_missing_struct_and_field_errors():
    binary = build_module("1.0.0")
    with pytest.raises(DwarfError):
        dwarf_extract_struct(binary, "no_such_struct", ["x"])
    with pytest.raises(DwarfError):
        dwarf_extract_struct(binary, "sdma_state", ["no_such_field"])


def test_array_and_pointer_types_resolve():
    s = CStructDef("t", [Field("p", PTR), Field("arr", ARRAY(U16, 8))])
    binary = emit_dwarf([s], module="m", version="9")
    layout = dwarf_extract_struct(binary, "t", ["p", "arr"])
    p = layout.field("p")
    assert (p.elem_size, p.count, p.type_name) == (8, 1, "void *")
    arr = layout.field("arr")
    assert (arr.elem_size, arr.count) == (2, 8)
    assert layout.source_version == "9"


def test_structview_array_bounds():
    heap = SharedHeap(4096, base=0)
    s = CStructDef("t", [Field("arr", ARRAY(U32, 2))])
    binary = emit_dwarf([s])
    layout = dwarf_extract_struct(binary, "t", ["arr"])
    inst = StructInstance(s, heap)
    view = StructView(layout, heap, inst.addr)
    view.set("arr", 7, index=1)
    assert view.get("arr", index=1) == 7
    with pytest.raises(ReproError):
        view.get("arr", index=2)


def test_dwarf_walk_visits_all_tags():
    binary = build_module("1.0.0")
    tags = {die.tag for die in binary.dwarf.walk()}
    assert D.DW_TAG_compile_unit in tags
    assert D.DW_TAG_structure_type in tags
    assert D.DW_TAG_member in tags
    assert D.DW_TAG_base_type in tags


def test_dangling_type_reference_raises():
    binary = build_module("1.0.0")
    with pytest.raises(DwarfError):
        binary.dwarf.resolve(0xDEAD_BEEF)


_CTYPES = [U8, U16, U32, U64, PTR, ENUM("e")]


@given(seed=st.integers(0, 10_000), n_fields=st.integers(1, 12))
@settings(max_examples=60)
def test_extraction_matches_abi_for_random_structs(seed, n_fields):
    """Property: for arbitrary struct shapes, DWARF extraction reproduces
    the ABI-computed offsets exactly."""
    import numpy as np
    rng = np.random.default_rng(seed)
    fields = []
    for i in range(n_fields):
        ct = _CTYPES[rng.integers(0, len(_CTYPES))]
        if rng.random() < 0.3:
            fields.append(Field(f"f{i}", ARRAY(ct, int(rng.integers(1, 9)))))
        else:
            fields.append(Field(f"f{i}", ct))
    sdef = CStructDef("rand", fields)
    binary = emit_dwarf([sdef])
    layout = dwarf_extract_struct(binary, "rand", [f.name for f in fields])
    assert layout.byte_size == sdef.size
    for f in fields:
        got = layout.field(f.name)
        assert got.offset == sdef.offset_of(f.name)
        assert got.elem_size == f.elem.size
        assert got.count == f.count


def test_array_dies_are_interned_per_elem_and_count():
    """Two fields of type u64[16] share one DW_TAG_array_type DIE (as
    real compilers emit); a different element count gets its own."""
    s = CStructDef("t", [Field("a", ARRAY(U64, 16)),
                         Field("b", ARRAY(U64, 16)),
                         Field("c", ARRAY(U64, 4))])
    binary = emit_dwarf([s])
    arrays = [die for die in binary.dwarf.walk()
              if die.tag == D.DW_TAG_array_type]
    assert len(arrays) == 2
    sdie = next(die for die in binary.dwarf.walk()
                if die.tag == D.DW_TAG_structure_type)
    refs = {m.at(D.DW_AT_name): m.at(D.DW_AT_type) for m in sdie.children}
    assert refs["a"] == refs["b"]
    assert refs["a"] != refs["c"]
    # dedupe must not disturb extraction
    layout = dwarf_extract_struct(binary, "t", ["a", "b", "c"])
    assert (layout.field("b").elem_size, layout.field("b").count) == (8, 16)
    assert layout.field("c").count == 4
