"""Tests for the InfiniBand memory-registration extension — the paper's
future-work port, exercising the same framework contract as the HFI
PicoDriver."""

import pytest

from repro.config import OSConfig
from repro.core.mlx_pico import MlxMemRegPicoDriver
from repro.errors import DriverError, LayoutError
from repro.experiments import build_machine
from repro.linux.mlx import (MEMREG_COMMANDS, MLX_CMD_CREATE_PD,
                             MLX_CMD_DEREG_MR, MLX_CMD_QUERY_DEVICE,
                             MLX_CMD_REG_MR, MlxDriver)
from repro.linux.mlx.debuginfo import build_module
from repro.units import MiB, PAGE_SIZE


def machine_with_ib(cfg):
    machine = build_machine(1, cfg)
    mlx = MlxDriver()
    machine.nodes[0].linux.load_driver(mlx)
    pico = None
    if cfg is OSConfig.MCKERNEL_HFI:
        pico = MlxMemRegPicoDriver(mlx)
        machine.nodes[0].mckernel.register_picodriver(pico)
    return machine, mlx, pico


def run(machine, body):
    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run(until=proc)
    return proc.value


def reg_dereg(machine, mlx, nbytes=4 * MiB):
    def body(task):
        fd = yield from task.syscall("open", mlx.device_path)
        buf = yield from task.syscall("mmap", nbytes)
        keys = yield from task.syscall("ioctl", fd, MLX_CMD_REG_MR,
                                       {"vaddr": buf, "length": nbytes})
        used = mlx.mtt_entries_used
        yield from task.syscall("ioctl", fd, MLX_CMD_DEREG_MR,
                                {"lkey": keys["lkey"]})
        yield from task.syscall("close", fd)
        return keys, used

    return run(machine, body)


@pytest.mark.parametrize("cfg", list(OSConfig), ids=lambda c: c.value)
def test_reg_mr_roundtrip(cfg):
    machine, mlx, _ = machine_with_ib(cfg)
    keys, used = reg_dereg(machine, mlx)
    assert keys["rkey"] == keys["lkey"] + 1
    assert used > 0
    assert mlx.mtt_entries_used == 0  # dereg returned everything


def test_linux_programs_one_mtt_entry_per_page():
    machine, mlx, _ = machine_with_ib(OSConfig.LINUX)
    _, used = reg_dereg(machine, mlx, nbytes=1 * MiB)
    assert used == 1 * MiB // PAGE_SIZE      # 256 entries


def test_pico_programs_one_mtt_entry_per_span():
    """McKernel's contiguous memory collapses the MTT footprint."""
    machine, mlx, pico = machine_with_ib(OSConfig.MCKERNEL_HFI)
    _, used = reg_dereg(machine, mlx, nbytes=1 * MiB)
    assert used <= 4                          # contiguous spans, not pages
    assert machine.tracer.get_count("pico.mlx_reg_mr") == 1


def test_pico_claims_only_memreg_commands():
    machine, mlx, pico = machine_with_ib(OSConfig.MCKERNEL_HFI)
    assert pico.claims("ioctl", (3, MLX_CMD_REG_MR, None)).handled
    assert pico.claims("ioctl", (3, MLX_CMD_DEREG_MR, None)).handled
    assert not pico.claims("ioctl", (3, MLX_CMD_CREATE_PD, None)).handled
    assert not pico.claims("ioctl", (3, MLX_CMD_QUERY_DEVICE, None)).handled
    assert not pico.claims("writev", (3, [])).handled
    assert len(MEMREG_COMMANDS) == 2


def test_admin_commands_still_offload():
    machine, mlx, _ = machine_with_ib(OSConfig.MCKERNEL_HFI)

    def body(task):
        fd = yield from task.syscall("open", mlx.device_path)
        info = yield from task.syscall("ioctl", fd, MLX_CMD_QUERY_DEVICE,
                                       None)
        return info

    info = run(machine, body)
    assert info["max_mr_size"] == 1 << 40


def test_dereg_unknown_key_rejected():
    machine, mlx, _ = machine_with_ib(OSConfig.MCKERNEL_HFI)

    def body(task):
        fd = yield from task.syscall("open", mlx.device_path)
        yield from task.syscall("ioctl", fd, MLX_CMD_DEREG_MR,
                                {"lkey": 0xBEEF})

    task = machine.spawn_rank(0, 1)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, DriverError)


def test_attach_requires_unified_address_space():
    machine = build_machine(1, OSConfig.MCKERNEL)   # original layout
    mlx = MlxDriver()
    machine.nodes[0].linux.load_driver(mlx)
    with pytest.raises(LayoutError):
        machine.nodes[0].mckernel.register_picodriver(
            MlxMemRegPicoDriver(mlx))


def test_attach_requires_matching_driver_version():
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    mlx = MlxDriver()
    machine.nodes[0].linux.load_driver(mlx)
    pico = MlxMemRegPicoDriver(mlx)
    pico.module = build_module("4.4-2.0.7")   # stale extraction source
    with pytest.raises(DriverError, match="re-run dwarf-extract-struct"):
        machine.nodes[0].mckernel.register_picodriver(pico)


def test_mlx_dwarf_version_drift():
    from repro.core import dwarf_extract_struct
    old = dwarf_extract_struct(build_module("4.3-1.0.1"), "mlx5_ib_mr",
                               ["lkey"])
    new = dwarf_extract_struct(build_module("4.4-2.0.7"), "mlx5_ib_mr",
                               ["lkey"])
    assert old.field("lkey").offset != new.field("lkey").offset


def test_two_picodrivers_coexist():
    """The HFI and InfiniBand fast paths register side by side."""
    machine, mlx, pico = machine_with_ib(OSConfig.MCKERNEL_HFI)
    mck = machine.nodes[0].mckernel
    assert len(mck.pico) == 2
    assert mck.pico.lookup("/dev/hfi1_0") is not None
    assert mck.pico.lookup(mlx.device_path) is pico


def test_mtt_exhaustion():
    machine, mlx, _ = machine_with_ib(OSConfig.LINUX)
    mlx.devdata.set("mtt_entries_max", 8)

    def body(task):
        fd = yield from task.syscall("open", mlx.device_path)
        buf = yield from task.syscall("mmap", 1 * MiB)
        yield from task.syscall("ioctl", fd, MLX_CMD_REG_MR,
                                {"vaddr": buf, "length": 1 * MiB})

    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, DriverError)


# --- PicoGuard dispatch and typed-error regression ---------------------------

def test_base_claims_surfaces_typed_driver_error():
    """The framework base class itself is typed: a PicoDriver with no
    claims() must raise DriverError, never bare NotImplementedError."""
    from repro.core.picodriver import PicoDriver
    with pytest.raises(DriverError, match="claims"):
        PicoDriver().claims("ioctl", (3, MLX_CMD_REG_MR, None))


def test_unsupported_fast_command_surfaces_typed_error():
    """A command the mlx fast path does not support surfaces as a typed
    DriverError through the McKernel dispatcher — the app can catch it;
    a bare NotImplementedError would escape the syscall layer."""
    machine, mlx, pico = machine_with_ib(OSConfig.MCKERNEL_HFI)
    from repro.core.picodriver import FastPathDecision
    # rig dispatch: claim every ioctl, including unsupported commands
    pico.claims = lambda syscall, args: FastPathDecision.claim("rigged")

    def body(task):
        fd = yield from task.syscall("open", mlx.device_path)
        yield from task.syscall("ioctl", fd, MLX_CMD_QUERY_DEVICE, None)

    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, DriverError)
    assert not isinstance(proc.exception, NotImplementedError)


def test_claimed_but_unimplemented_syscall_surfaces_typed_error():
    """Claiming a syscall with no fast_<name> handler is a porting bug
    the dispatcher reports as a typed DriverError."""
    machine, mlx, pico = machine_with_ib(OSConfig.MCKERNEL_HFI)
    from repro.core.picodriver import FastPathDecision
    pico.claims = lambda syscall, args: FastPathDecision.claim("rigged")

    def body(task):
        fd = yield from task.syscall("open", mlx.device_path)
        yield from task.syscall("poll", fd)

    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, DriverError)
    assert "fast_poll" in str(proc.exception)


def test_mtt_exhaustion_feeds_memreg_breaker_and_routes_offload():
    """With PicoGuard attached, MTT exhaustion on the memreg fast path
    trips its breaker and later registrations route straight to the
    offloaded slow path — still failing typed, but without fast-path
    exception churn."""
    from repro.config import GUARD, enable_guard
    from repro.guard import GuardPolicy
    from repro.guard.manager import GuardManager
    from repro.units import USEC

    enable_guard(GuardPolicy(failure_window=4, failure_threshold=1,
                             probe_successes=1, probe_backoff=50 * USEC))
    try:
        machine, mlx, pico = machine_with_ib(OSConfig.MCKERNEL_HFI)
        mlx.guard = GuardManager(machine.sim, GUARD.policy, 1,
                                 machine.tracer, label="node0.mlx",
                                 path_prefix="memreg",
                                 data_syscalls=("ioctl",))
        # zero MTT capacity: even the span-collapsed fast path is refused
        mlx.devdata.set("mtt_entries_max", 0)
        outcomes = []

        def body(task):
            fd = yield from task.syscall("open", mlx.device_path)
            buf = yield from task.syscall("mmap", 1 * MiB)
            for _attempt in range(2):
                try:
                    yield from task.syscall(
                        "ioctl", fd, MLX_CMD_REG_MR,
                        {"vaddr": buf, "length": 1 * MiB})
                    outcomes.append("ok")
                except DriverError:
                    outcomes.append("typed")

        task = machine.spawn_rank(0, 0)
        proc = machine.sim.process(body(task))
        machine.sim.run()
        assert proc.exception is None
        assert outcomes == ["typed", "typed"]
        # the first failure tripped the hair-trigger breaker out of
        # CLOSED (by end of run the probe backoff has moved it OPEN ->
        # PROBING, so check the FSM left CLOSED, not a frozen state)...
        from repro.guard.breaker import BREAKER_CLOSED
        assert mlx.guard.breakers["memreg0"].state != BREAKER_CLOSED
        # ...so the second attempt was routed to offload at dispatch
        assert machine.tracer.get_count("guard.routed_offload.ioctl") >= 1
    finally:
        enable_guard(None)
