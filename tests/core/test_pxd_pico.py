"""Tests for the pxd block-device PicoDriver: the replicated-write fast
path, its claim policy, the attach-time porting checklist and the
suspend fallback seam to the unmodified Linux driver."""

from dataclasses import replace

import pytest

from repro.config import OSConfig
from repro.errors import BadSyscall, DriverError, LayoutError, MediaError
from repro.experiments import build_machine
from repro.linux.pxd import ioctls as ioc
from repro.linux.pxd.debuginfo import NEXT_VERSION, build_module
from repro.params import default_params
from repro.sim import Event


def storage_params(replicas=3):
    params = default_params()
    return params.with_overrides(blk=replace(params.blk, replicas=replicas))


def make_machine(replicas=3, cfg=OSConfig.MCKERNEL_HFI):
    machine = build_machine(1, cfg, params=storage_params(replicas))
    mn = machine.nodes[0]
    return machine, mn.pxd, mn.pxd_pico, mn.node.blockdev


def run(machine, body):
    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    return proc


def payload_for(i, sector_size, nsectors=2):
    return bytes([(17 * i + 9) & 0xFF]) * (nsectors * sector_size)


def write(machine, task, fd, buf, sector, payload):
    completion = Event(machine.sim)
    yield from task.syscall(
        "writev", fd,
        [{"sector": sector, "payload": payload, "completion": completion},
         (buf, len(payload))])
    yield completion


def test_fast_write_read_roundtrip_mirrors_all_replicas():
    machine, pxd, pico, blockdev = make_machine()
    sector_size = machine.params.blk.sector_size
    payload = payload_for(0, sector_size)

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", len(payload))
        yield from write(machine, task, fd, buf, 12, payload)
        data = yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_READ,
                                       {"sector": 12, "nsectors": 2})
        return data

    proc = run(machine, body)
    assert proc.exception is None
    assert proc.value == payload
    for media in blockdev.replicas:
        assert media.peek(12, 2) == payload
    # both data ops ran on the fast path, not through offload
    assert machine.tracer.get_count("pico.pxd_writes") == 1
    assert machine.tracer.get_count("pico.pxd_reads") == 1
    assert machine.tracer.get_count("pico.fast.writev") == 1
    assert machine.tracer.get_count("pxd.writes") == 0
    # the ack policy is shared: the Linux driver counted the ack
    assert machine.tracer.get_count("pxd.acked_writes") == 1


def test_claims_only_the_data_path():
    machine, pxd, pico, _ = make_machine()
    assert pico.claims("writev", (3, [])).handled
    assert pico.claims("ioctl", (3, ioc.PXD_IOCTL_READ, None)).handled
    assert not pico.claims("ioctl", (3, ioc.PXD_IOCTL_GET_STATS, None)).handled
    assert not pico.claims("ioctl",
                           (3, ioc.PXD_IOCTL_UPDATE_PATH, None)).handled
    assert not pico.claims("close", (3,)).handled


def test_admin_ioctls_offload_to_the_linux_driver():
    machine, pxd, pico, _ = make_machine()

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        stats = yield from task.syscall("ioctl", fd,
                                        ioc.PXD_IOCTL_GET_STATS, None)
        return stats

    proc = run(machine, body)
    assert proc.exception is None
    assert proc.value["inservice"] == [0, 1, 2]
    assert machine.tracer.get_count("pico.offload.ioctl") >= 1


def test_suspend_falls_back_to_the_slow_path_and_resumes():
    machine, pxd, pico, blockdev = make_machine()
    sector_size = machine.params.blk.sector_size

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", 2 * sector_size)
        yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_SET_SUSPEND, 1)
        yield from write(machine, task, fd, buf, 0,
                         payload_for(1, sector_size))
        yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_SET_SUSPEND, 0)
        yield from write(machine, task, fd, buf, 4,
                         payload_for(2, sector_size))

    proc = run(machine, body)
    assert proc.exception is None
    # suspended write: fast path refused, dispatcher fell back to Linux
    assert machine.tracer.get_count("pico.pxd_suspended") == 1
    assert machine.tracer.get_count("pico.fallbacks") == 1
    assert machine.tracer.get_count("pxd.writes") == 1
    # resumed write went fast again
    assert machine.tracer.get_count("pico.pxd_writes") == 1
    assert machine.tracer.get_count("pxd.acked_writes") == 2


def test_fast_path_observes_linux_side_eviction():
    """The fast path's target set comes from the shared in-service mask
    the Linux completion path maintains — an evicted replica stops
    receiving fast-path clones immediately."""
    machine, pxd, pico, blockdev = make_machine(replicas=3)
    sector_size = machine.params.blk.sector_size

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", 2 * sector_size)
        blockdev.replicas[0].online = False
        yield from write(machine, task, fd, buf, 0,
                         payload_for(3, sector_size))
        before = machine.tracer.get_count("blk.r0.submits")
        yield from write(machine, task, fd, buf, 4,
                         payload_for(4, sector_size))
        return before

    proc = run(machine, body)
    assert proc.exception is None
    assert pxd.inservice == {1, 2}
    # the second write never targeted the evicted replica
    assert machine.tracer.get_count("blk.r0.submits") == proc.value


def test_all_replicas_failing_fast_write_is_typed():
    machine, pxd, pico, blockdev = make_machine(replicas=2)
    sector_size = machine.params.blk.sector_size
    outcomes = []

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", 2 * sector_size)
        for media in blockdev.replicas:
            media.online = False
        try:
            yield from write(machine, task, fd, buf, 0,
                             payload_for(5, sector_size))
        except MediaError:
            outcomes.append("typed")
        # with the set empty the fast path defers; the slow path owns
        # the typed refusal
        try:
            yield from write(machine, task, fd, buf, 4,
                             payload_for(6, sector_size))
        except MediaError:
            outcomes.append("typed-empty")

    proc = run(machine, body)
    assert proc.exception is None
    assert outcomes == ["typed", "typed-empty"]
    assert machine.tracer.get_count("pico.pxd_no_replicas") == 1
    assert pxd.fsm_violations() == []


def test_fast_read_range_checked_against_the_data_region():
    machine, pxd, pico, _ = make_machine()

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_READ,
                                {"sector": pxd.probe_sector, "nsectors": 1})

    assert isinstance(run(machine, body).exception, BadSyscall)


def test_attach_requires_unified_address_space():
    from repro.core.pxd_pico import PxdPicoDriver
    machine = build_machine(1, OSConfig.MCKERNEL,  # original layout
                            params=storage_params())
    mn = machine.nodes[0]
    assert mn.pxd_pico is None
    with pytest.raises(LayoutError):
        mn.mckernel.register_picodriver(PxdPicoDriver(mn.pxd))


def test_attach_requires_matching_driver_version():
    from repro.core.pxd_pico import PxdPicoDriver
    machine = build_machine(1, OSConfig.MCKERNEL_HFI,
                            params=storage_params())
    mn = machine.nodes[0]
    mn.mckernel.pico.unregister(mn.pxd.device_path)
    pico = PxdPicoDriver(mn.pxd)
    pico.module = build_module(NEXT_VERSION)   # stale extraction source
    with pytest.raises(DriverError, match="re-run dwarf-extract-struct"):
        mn.mckernel.register_picodriver(pico)
