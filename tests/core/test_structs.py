"""Unit tests for C structure layout modeling (ABI offsets, instances)."""

import pytest

from repro.core import ARRAY, ENUM, PTR, U8, U16, U32, U64, CStructDef, Field, StructInstance
from repro.errors import ReproError
from repro.hw import SharedHeap


def test_natural_alignment_offsets():
    s = CStructDef("s", [
        Field("a", U8),       # 0
        Field("b", U32),      # 4 (padded)
        Field("c", U16),      # 8
        Field("d", U64),      # 16 (padded)
    ])
    assert s.offset_of("a") == 0
    assert s.offset_of("b") == 4
    assert s.offset_of("c") == 8
    assert s.offset_of("d") == 16
    assert s.size == 24
    assert s.align == 8


def test_trailing_padding_to_max_alignment():
    s = CStructDef("s", [Field("p", PTR), Field("x", U8)])
    assert s.size == 16


def test_array_fields():
    s = CStructDef("s", [Field("blob", ARRAY(U8, 40)), Field("v", U32)])
    assert s.offset_of("v") == 40
    assert s.size == 44


def test_enum_is_four_bytes():
    e = ENUM("sdma_states")
    assert e.size == 4 and e.name == "enum sdma_states"


def test_embedded_struct_as_ctype():
    inner = CStructDef("inner", [Field("x", U64)])
    outer = CStructDef("outer", [Field("in_", inner.as_ctype()),
                                 Field("y", U32)])
    assert outer.offset_of("y") == inner.size


def test_duplicate_fields_rejected():
    with pytest.raises(ReproError):
        CStructDef("s", [Field("a", U32), Field("a", U32)])


def test_empty_struct_rejected():
    with pytest.raises(ReproError):
        CStructDef("s", [])


def test_unknown_field_rejected():
    s = CStructDef("s", [Field("a", U32)])
    with pytest.raises(ReproError):
        s.offset_of("b")
    with pytest.raises(ReproError):
        s.field("b")


def test_instance_roundtrip():
    heap = SharedHeap(4096, base=0)
    s = CStructDef("s", [Field("a", U32), Field("b", U64)])
    inst = StructInstance(s, heap)
    inst.set("a", 0xDEAD)
    inst.set("b", 0x1122334455667788)
    assert inst.get("a") == 0xDEAD
    assert inst.get("b") == 0x1122334455667788


def test_instance_array_indexing():
    heap = SharedHeap(4096, base=0)
    s = CStructDef("s", [Field("arr", ARRAY(U32, 4))])
    inst = StructInstance(s, heap)
    for i in range(4):
        inst.set("arr", i * 11, index=i)
    assert [inst.get("arr", index=i) for i in range(4)] == [0, 11, 22, 33]
    with pytest.raises(ReproError):
        inst.get("arr", index=4)


def test_instance_signed_field():
    from repro.core.structs import S32
    heap = SharedHeap(4096, base=0)
    s = CStructDef("s", [Field("v", S32)])
    inst = StructInstance(s, heap)
    inst.set("v", -5)
    assert inst.get("v") == -5


def test_instances_write_real_bytes():
    """Field writes land at the computed offset in heap memory."""
    heap = SharedHeap(4096, base=0x1000)
    s = CStructDef("s", [Field("pad", ARRAY(U8, 40)), Field("v", U32)])
    inst = StructInstance(s, heap)
    inst.set("v", 0x0A0B0C0D)
    raw = heap.read(inst.addr + 40, 4)
    assert raw == bytes([0x0D, 0x0C, 0x0B, 0x0A])  # little endian


def test_instance_free_returns_memory():
    heap = SharedHeap(4096, base=0)
    s = CStructDef("s", [Field("a", U64)])
    inst = StructInstance(s, heap)
    inst.free()
    assert heap.live_objects() == 0
