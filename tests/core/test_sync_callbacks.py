"""Tests for cross-kernel spinlocks and the callback registry (sec 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (CallbackRegistry, CrossKernelSpinLock, linux_layout,
                        mckernel_original_layout, mckernel_unified_layout)
from repro.errors import DriverError, PageFault, ReproError
from repro.hw import SharedHeap
from repro.sim import Simulator


def make_lock():
    sim = Simulator()
    heap = SharedHeap(4096)  # default base: the shared direct map
    lock = CrossKernelSpinLock(sim, heap, name="sdma")
    return sim, heap, lock


def test_lock_word_lives_in_shared_heap():
    sim, heap, lock = make_lock()
    assert heap.contains(lock.word_addr)
    assert not lock.locked


def test_acquire_release_updates_word():
    sim, heap, lock = make_lock()
    linux = linux_layout()

    def body():
        yield from lock.acquire("linux", linux)
        assert lock.locked and lock.held_by("linux")
        assert heap.read_u(lock.word_addr, 4) == 1
        lock.release("linux")
        assert not lock.locked
        assert heap.read_u(lock.word_addr, 4) == 0

    sim.run(until=sim.process(body()))


def test_mutual_exclusion_and_spin_accounting():
    sim, heap, lock = make_lock()
    linux = linux_layout()
    mck = mckernel_unified_layout()
    order = []

    def holder():
        yield from lock.acquire("linux", linux)
        order.append(("linux", sim.now))
        yield sim.timeout(5.0)
        lock.release("linux")

    def waiter():
        yield sim.timeout(1.0)
        yield from lock.acquire("mckernel", mck)
        order.append(("mckernel", sim.now))
        lock.release("mckernel")

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert order == [("linux", 0.0), ("mckernel", 5.0)]
    # the waiter spun for 4 seconds (Linux can't wake it across kernels)
    assert lock.tracer.get_total("spin.sdma") == pytest.approx(4.0)


def test_non_unified_mckernel_faults_on_lock_word():
    sim, heap, lock = make_lock()
    mck_orig = mckernel_original_layout()

    def body():
        yield from lock.acquire("mckernel", mck_orig)

    proc = sim.process(body())
    sim.run()
    assert isinstance(proc.exception, PageFault)


def test_incompatible_spinlock_implementation_rejected():
    sim, heap, lock = make_lock()

    def body():
        yield from lock.acquire("mckernel", mckernel_unified_layout(),
                                impl="mckernel-legacy-ticketlock")

    proc = sim.process(body())
    sim.run()
    assert isinstance(proc.exception, DriverError)


def test_release_by_non_holder_rejected():
    sim, heap, lock = make_lock()

    def body():
        yield from lock.acquire("linux", linux_layout())

    sim.run(until=sim.process(body()))
    with pytest.raises(ReproError):
        lock.release("mckernel")
    with pytest.raises(ReproError):
        lock.release("linux") or lock.release("linux")


def test_double_release_raises_driver_error():
    sim, heap, lock = make_lock()

    def body():
        yield from lock.acquire("linux", linux_layout())

    sim.run(until=sim.process(body()))
    lock.release("linux")
    with pytest.raises(DriverError, match="double release of sdma"):
        lock.release("linux")
    # the failed release must not corrupt the lock: still re-acquirable
    def again():
        yield from lock.acquire("mckernel", mckernel_unified_layout())
        lock.release("mckernel")

    sim.run(until=sim.process(again()))
    assert not lock.locked


def test_release_by_non_holder_names_both_kernels():
    sim, heap, lock = make_lock()

    def body():
        yield from lock.acquire("linux", linux_layout())

    sim.run(until=sim.process(body()))
    with pytest.raises(DriverError,
                       match="mckernel releasing sdma held by linux"):
        lock.release("mckernel")
    # ownership is untouched: linux still holds and can release
    assert lock.held_by("linux")
    lock.release("linux")
    assert not lock.locked


def test_impl_mismatch_leaves_lock_untaken():
    sim, heap, lock = make_lock()

    def bad():
        yield from lock.acquire("mckernel", mckernel_unified_layout(),
                                impl="mckernel-legacy-ticketlock")

    proc = sim.process(bad())
    sim.run()
    assert isinstance(proc.exception, DriverError)
    assert "implementation mismatch" in str(proc.exception)
    assert not lock.locked and lock.holder is None

    def good():
        yield from lock.acquire("mckernel", mckernel_unified_layout())
        lock.release("mckernel")

    sim.run(until=sim.process(good()))


def test_page_fault_on_acquire_leaves_lock_free():
    """A non-unified McKernel faults on the lock word *before* joining
    the FIFO queue — Linux must still be able to take the lock."""
    sim, heap, lock = make_lock()

    def faulting():
        yield from lock.acquire("mckernel", mckernel_original_layout())

    proc = sim.process(faulting())
    sim.run()
    assert isinstance(proc.exception, PageFault)
    assert not lock.locked and lock.holder is None

    def linux_body():
        yield from lock.acquire("linux", linux_layout())
        lock.release("linux")

    sim.run(until=sim.process(linux_body()))
    assert not lock.locked


@given(n_contenders=st.integers(2, 10), hold=st.floats(0.1, 2.0))
@settings(max_examples=25)
def test_lock_is_fifo_fair_under_contention(n_contenders, hold):
    sim = Simulator()
    heap = SharedHeap(65536)
    lock = CrossKernelSpinLock(sim, heap)
    aspace = linux_layout()
    granted = []

    def contender(i):
        yield sim.timeout(i * 0.001)  # deterministic arrival order
        yield from lock.acquire("linux", aspace)
        granted.append(i)
        yield sim.timeout(hold)
        lock.release("linux")

    for i in range(n_contenders):
        sim.process(contender(i))
    sim.run()
    assert granted == list(range(n_contenders))


# --- callbacks ---------------------------------------------------------------

def make_registry(unified=True):
    linux = linux_layout()
    mck = mckernel_original_layout()
    if unified:
        from repro.core import unify_address_spaces
        unify_address_spaces(linux, mck)
    return CallbackRegistry({"linux": linux, "mckernel": mck})


def test_callback_address_is_in_owner_text():
    reg = make_registry()
    addr = reg.register("mckernel", lambda: None)
    assert reg.owner_of(addr) == "mckernel"
    from repro.core.address_space import MCK_UNIFIED_TEXT_BASE, MCK_IMAGE_SIZE
    assert MCK_UNIFIED_TEXT_BASE <= addr < MCK_UNIFIED_TEXT_BASE + MCK_IMAGE_SIZE


def test_linux_invokes_mckernel_callback_when_unified():
    reg = make_registry(unified=True)
    hits = []
    addr = reg.register("mckernel", lambda x: hits.append(x) or "ret")
    assert reg.invoke("linux", addr, 42) == "ret"
    assert hits == [42]


def test_linux_cannot_invoke_mckernel_callback_without_unification():
    reg = make_registry(unified=False)
    addr = reg.register("mckernel", lambda: None)
    with pytest.raises(PageFault):
        reg.invoke("linux", addr)


def test_unknown_callback_address_rejected():
    reg = make_registry()
    with pytest.raises(ReproError):
        reg.invoke("linux", 0x1234)
    with pytest.raises(ReproError):
        reg.owner_of(0x1234)


def test_unknown_kernel_rejected():
    reg = make_registry()
    with pytest.raises(ReproError):
        reg.register("plan9", lambda: None)
    addr = reg.register("linux", lambda: None)
    with pytest.raises(ReproError):
        reg.invoke("plan9", addr)


def test_distinct_callbacks_get_distinct_addresses():
    reg = make_registry()
    addrs = {reg.register("mckernel", lambda: None) for _ in range(10)}
    assert len(addrs) == 10


# --- recursion detection (lockdep) -------------------------------------------

def test_recursive_acquire_raises_instead_of_spinning_forever():
    """A context re-acquiring its own spinlock would spin forever (it can
    never observe its own release); the lock turns that hang into a
    typed error at acquire time."""
    sim, heap, lock = make_lock()
    linux = linux_layout()

    def body():
        yield from lock.acquire("linux", linux)
        yield from lock.acquire("linux", linux)

    proc = sim.process(body())
    sim.run()
    assert isinstance(proc.exception, DriverError)
    assert "recursive acquisition of sdma" in str(proc.exception)
    # the original hold is intact and still releasable
    assert lock.held_by("linux")
    lock.release("linux")


def test_recursive_acquire_detected_through_helper_frames():
    """The holder frame sits deeper in the ``yield from`` chain: the
    re-acquire happens inside a helper the holder delegates to."""
    sim, heap, lock = make_lock()
    linux = linux_layout()

    def helper():
        yield from lock.acquire("linux", linux)

    def body():
        yield from lock.acquire("linux", linux)
        yield from helper()

    proc = sim.process(body())
    sim.run()
    assert isinstance(proc.exception, DriverError)
    assert "recursive acquisition" in str(proc.exception)


def test_same_kernel_distinct_contexts_still_queue():
    """Recursion detection keys on the holder *frame*, not the kernel
    name: a second McKernel core contending for the lock is legal and
    must queue, not trip the recursion check."""
    sim, heap, lock = make_lock()
    mck = mckernel_unified_layout()
    order = []

    def contender(idx):
        yield from lock.acquire("mckernel", mck)
        order.append(idx)
        yield sim.timeout(1.0)
        lock.release("mckernel")

    procs = [sim.process(contender(i)) for i in range(3)]
    sim.run()
    assert all(p.exception is None for p in procs)
    assert order == [0, 1, 2]


def test_misuse_is_rejected_with_lockdep_monitor_installed():
    """The double-release and wrong-kernel-release guards predate the
    validator; installing one must not swallow or reorder them."""
    from repro.analysis.lockdep import LockdepValidator

    sim, heap, lock = make_lock()
    linux = linux_layout()
    validator = LockdepValidator(sim, register=False)
    heap.add_monitor(validator)

    def body():
        yield from lock.acquire("linux", linux)
        lock.release("linux")

    sim.run(until=sim.process(body()))
    with pytest.raises(DriverError, match="double release of sdma"):
        lock.release("linux")
    assert validator.reports == []
    assert "1 acquisition(s)" in validator.summary()

    def body2():
        yield from lock.acquire("linux", linux)

    sim.run(until=sim.process(body2()))
    with pytest.raises(DriverError,
                       match="mckernel releasing sdma held by linux"):
        lock.release("mckernel")
    # the failed release left the validator's held-stack untouched
    lock.release("linux")
    assert "2 acquisition(s)" in validator.summary()


# --- rcu ---------------------------------------------------------------------

def test_rcu_synchronize_is_explicitly_unsupported():
    from repro.core.sync import rcu_synchronize
    with pytest.raises(NotImplementedError):
        rcu_synchronize()
