"""The chaos sweep: integrity contract, degradation reporting and the
CLI entry point."""

from repro.config import FAULTS, OSConfig
from repro.experiments.chaos import (DEFAULT_RATES, SMOKE_RATES, cmd_chaos,
                                     run_chaos)


def test_smoke_sweep_holds_the_integrity_contract():
    """The acceptance bar for the PicoDriver config: every message lands
    or typed-fails, the fast path demonstrably falls back, and engine
    halts actually happened (we were not testing a calm sea)."""
    result = run_chaos(smoke=True, configs=(OSConfig.MCKERNEL_HFI,))
    assert result.violations == []
    assert [c.rate for c in result.cells] == list(SMOKE_RATES)
    assert all(c.delivered + c.failed_typed == c.messages
               for c in result.cells)
    faulted = [c for c in result.cells if c.rate > 0]
    assert any(c.counters.get("pico.fallbacks", 0) > 0 for c in faulted)
    assert any(c.counters.get("hfi.sdma_halts", 0) > 0 for c in faulted)


def test_zero_rate_cell_never_draws_a_fault():
    result = run_chaos(smoke=True, rates=(0.0,),
                       configs=(OSConfig.LINUX,), n_messages=3)
    cell = result.cells[0]
    assert cell.delivered == 3 and cell.ok
    assert not any(k.startswith("faults.") for k in cell.counters)


def test_sweep_restores_global_fault_config():
    run_chaos(smoke=True, rates=(0.01,), configs=(OSConfig.LINUX,),
              n_messages=3)
    assert not FAULTS.enabled and FAULTS.plan is None


def test_render_reports_verdict_and_counters():
    result = run_chaos(smoke=True, rates=(0.0,),
                       configs=(OSConfig.LINUX,), n_messages=3)
    text = result.render()
    assert "data integrity" in text
    assert "fallbacks" in text and "goodput" in text
    assert "Linux" in text


def test_default_rates_are_a_sweep():
    assert DEFAULT_RATES[0] == 0.0
    assert list(DEFAULT_RATES) == sorted(DEFAULT_RATES)
    assert len(DEFAULT_RATES) > len(SMOKE_RATES)


def test_cmd_chaos_rejects_unknown_inputs(capsys):
    assert cmd_chaos(["--frobnicate"]) == 2
    assert cmd_chaos(["no-such-workload"]) == 2
    out = capsys.readouterr().out
    assert "usage" in out and "pingpong" in out


def test_parallel_sweep_is_bit_identical_to_serial():
    """The PicoTune shard runner fans the cells across processes; the
    merged sweep must match the serial one cell for cell."""
    kwargs = dict(smoke=True, rates=(0.0, 0.02),
                  configs=(OSConfig.MCKERNEL_HFI,), n_messages=4)
    serial = run_chaos(**kwargs, workers=1)
    parallel = run_chaos(**kwargs, workers=2)
    assert serial.cells == parallel.cells
    assert serial.violations == parallel.violations


def test_cmd_chaos_workers_flag(capsys):
    assert cmd_chaos(["--smoke", "--workers", "nope"]) == 2
    assert "workers" in capsys.readouterr().out
