"""Tests for ASCII charts and the markdown report generator."""

import pytest

from repro.experiments.charts import ascii_chart
from repro.experiments.report import generate_report


def test_chart_places_series_by_value():
    text = ascii_chart(["1", "2"], {"a": [0.0, 10.0]}, height=11,
                       y_max=10.0, y_min=0.0)
    lines = text.splitlines()
    # value 10 at top row, value 0 at bottom row
    assert "L" in lines[0]
    assert "L" in lines[10]


def test_chart_overlap_marker():
    text = ascii_chart(["x"], {"a": [5.0], "b": [5.0]}, y_max=10.0)
    assert "#" in text


def test_chart_handles_missing_points():
    text = ascii_chart(["1", "2"], {"a": [None, 3.0]})
    assert "(no data)" not in text


def test_chart_empty_series():
    assert ascii_chart(["1"], {"a": [None]}) == "(no data)"


def test_chart_legend_and_labels():
    text = ascii_chart(["1", "128"], {"Linux": [1.0, 2.0],
                                      "McKernel": [2.0, 1.0]},
                       y_label="pct")
    assert "L=Linux" in text and "m=McKernel" in text
    assert text.startswith("pct\n")
    assert "128" in text


def test_scaling_render_includes_chart():
    from repro.apps import LAMMPS
    from repro.experiments import run_scaling
    res = run_scaling(LAMMPS, node_counts=(1, 2), iterations=2)
    text = res.render()
    assert "% of Linux" in text
    assert "L=Linux" in text


@pytest.mark.slow
def test_report_generates_and_passes_own_checks():
    report = generate_report(fast=True)
    assert "# PicoDriver reproduction" in report
    assert "Figure 4" in report and "Porting effort" in report
    assert "❌" not in report          # every shape check passes
    assert report.count("✅") >= 10
