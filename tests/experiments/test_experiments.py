"""Tests of the experiment harnesses: every table/figure generator runs
and reproduces its paper shape (fast settings where possible)."""

import pytest

from repro.config import ALL_CONFIGS, OSConfig
from repro.experiments import (run_fig4, run_fig7, run_fig8, run_fig9,
                               run_scaling, run_sloc, run_table1)
from repro.experiments.fig4 import Fig4Result
from repro.units import KiB, MiB

FIG4_SIZES = (8 * KiB, 64 * KiB, 1 * MiB, 4 * MiB)


@pytest.fixture(scope="module")
def fig4() -> Fig4Result:
    return run_fig4(sizes=FIG4_SIZES, repetitions=3)


def test_fig4_has_all_series(fig4):
    assert set(fig4.series) == set(ALL_CONFIGS)
    for config in ALL_CONFIGS:
        assert set(fig4.series[config]) == set(FIG4_SIZES)
        assert all(v > 0 for v in fig4.series[config].values())


def test_fig4_pio_parity(fig4):
    for size in (8 * KiB, 64 * KiB):
        assert fig4.ratio(OSConfig.MCKERNEL, size) == pytest.approx(1.0)
        assert fig4.ratio(OSConfig.MCKERNEL_HFI, size) == pytest.approx(1.0)


def test_fig4_mckernel_around_90_percent(fig4):
    assert 0.80 < fig4.ratio(OSConfig.MCKERNEL, 4 * MiB) < 0.97


def test_fig4_hfi_beats_linux_at_4mb(fig4):
    assert 1.05 < fig4.ratio(OSConfig.MCKERNEL_HFI, 4 * MiB) < 1.30


def test_fig4_bandwidth_monotone_in_size(fig4):
    for config in ALL_CONFIGS:
        series = [fig4.series[config][s] for s in FIG4_SIZES]
        assert series == sorted(series)


def test_fig4_render(fig4):
    text = fig4.render()
    assert "Figure 4" in text and "4MB" in text and "McKernel+HFI1" in text


# --- scaling harness ----------------------------------------------------------

def test_scaling_skips_counts_below_min_nodes():
    res = run_fig7(node_counts=(1, 2, 4, 8), iterations=2)
    assert res.node_counts == (4, 8)


def test_scaling_render_contains_series():
    from repro.apps import LAMMPS
    res = run_scaling(LAMMPS, node_counts=(1, 2), iterations=2)
    text = res.render()
    assert "LAMMPS" in text and "Linux" in text
    assert len(res.series(OSConfig.MCKERNEL)) == 2
    assert res.relative[OSConfig.LINUX][1] == pytest.approx(1.0)


# --- table 1 -------------------------------------------------------------------

@pytest.fixture(scope="module")
def table1():
    return run_table1(iterations=3)


def test_table1_covers_apps_and_configs(table1):
    for app in ("UMT2013", "HACC", "QBOX"):
        for config in ALL_CONFIGS:
            rows = table1.top(app, config)
            assert 1 <= len(rows) <= 5
            assert rows[0].time >= rows[-1].time


def test_table1_umt_mckernel_wait_dominates(table1):
    top = table1.top("UMT2013", OSConfig.MCKERNEL, 2)
    assert top[0].call == "Wait"
    wait_l = table1.time_in("UMT2013", OSConfig.LINUX, "Wait")
    assert top[0].time > 4 * wait_l


def test_table1_render(table1):
    text = table1.render()
    assert "UMT2013" in text and "Cart_create" in text
    assert "% MPI" in text


# --- figures 8 / 9 ------------------------------------------------------------------

def test_fig8_shapes():
    res = run_fig8(iterations=3)
    mck = res.mckernel
    assert mck.share("ioctl") + mck.share("writev") > 0.70
    hfi = res.mckernel_hfi
    assert hfi.share("ioctl") + hfi.share("writev") < 0.30
    assert res.kernel_time_ratio < 0.15
    assert "Figure 8" in res.render("Figure 8")


def test_fig9_munmap_dominates():
    res = run_fig9(iterations=3)
    assert res.mckernel_hfi.dominant() == "munmap"
    assert res.kernel_time_ratio < 0.8


# --- porting effort ----------------------------------------------------------------------

def test_sloc_inventory():
    res = run_sloc()
    assert res.pico_sloc > 0
    assert res.sloc_fraction < 0.5        # fast path is a small fraction
    assert res.claimed_ioctls == 3 and res.total_ioctls == 13
    assert "Porting effort" in res.render()
