"""The PicoGuard flap campaign: failover under a fault burst, goodput
recovery past the acceptance bar, and a suspend/resume drill — all with
the global guard/fault config restored afterwards."""

from repro.config import FAULTS, GUARD
from repro.experiments.chaos import (FLAP_RECOVERY_BAR, FLAP_SMOKE_PHASES,
                                     cmd_chaos, run_flap)
import pytest


@pytest.fixture(scope="module")
def flap():
    """One smoke campaign shared by the assertions below (the run is
    the expensive part; the checks are all read-only)."""
    return run_flap(smoke=True)


def test_flap_holds_every_oracle(flap):
    assert flap.violations == []
    assert flap.ok


def test_flap_recovers_goodput_past_the_bar(flap):
    assert flap.recovery_ratio >= FLAP_RECOVERY_BAR


def test_flap_actually_flapped(flap):
    """The campaign is vacuous unless breakers opened, closed again,
    traffic was re-routed at dispatch, and the drill parked a request."""
    assert flap.counters.get("guard.failovers", 0) > 0
    assert flap.counters.get("guard.failbacks", 0) > 0
    assert flap.counters.get("guard.routed_offload", 0) > 0
    assert flap.counters.get("guard.suspends", 0) == 1
    assert flap.counters.get("guard.resumes", 0) == 1
    assert flap.counters.get("guard.parked", 0) > 0


def test_flap_phases_account_every_message(flap):
    assert [p.name for p in flap.phases] == [n for n, _ in FLAP_SMOKE_PHASES]
    for phase, (_name, planned) in zip(flap.phases, FLAP_SMOKE_PHASES):
        assert phase.messages == planned
        assert phase.delivered + phase.failed_typed == phase.messages
    # calm phases must be loss-free
    assert flap.phase("baseline").failed_typed == 0
    assert flap.phase("drill").failed_typed == 0


def test_flap_snapshots_one_per_node(flap):
    assert len(flap.snapshots) == 2
    for snap in flap.snapshots:
        assert not snap["suspended"] and snap["parked"] == 0


def test_flap_render_reports_verdict(flap):
    text = flap.render()
    assert "recovery ratio" in text
    assert "failovers" in text and "failbacks" in text
    assert "flap verdict" in text


def test_flap_restores_global_config(flap):
    assert not GUARD.enabled and GUARD.policy is None
    assert not FAULTS.enabled and FAULTS.plan is None


def test_cmd_chaos_flap_smoke_exits_clean(capsys):
    assert cmd_chaos(["--flap", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "Flap campaign" in out
