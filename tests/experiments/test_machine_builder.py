"""Machine-builder invariants for the three OS configurations."""

import pytest

from repro.config import OSConfig
from repro.core.address_space import (LINUX_DIRECT_MAP_BASE,
                                      validate_unification)
from repro.core.sync import rcu_synchronize
from repro.errors import ReproError
from repro.experiments import build_machine


def test_linux_config_has_no_lwk():
    m = build_machine(1, OSConfig.LINUX)
    node = m.nodes[0]
    assert node.mckernel is None and node.pico is None
    assert node.linux.noisy_app_cores
    # all cores stay with Linux
    assert len(node.node.cpus.owned_by("linux")) == m.params.node.total_cores


def test_mckernel_config_partitions_cores():
    m = build_machine(1, OSConfig.MCKERNEL)
    node = m.nodes[0]
    assert node.mckernel is not None and node.pico is None
    assert not node.linux.noisy_app_cores
    assert len(node.node.cpus.owned_by("mckernel")) == m.params.node.app_cores
    assert len(node.node.cpus.owned_by("linux")) == (
        m.params.node.total_cores - m.params.node.app_cores)


def test_mckernel_config_keeps_original_layout():
    m = build_machine(1, OSConfig.MCKERNEL)
    aspace = m.nodes[0].mckernel.aspace
    assert aspace.regions["direct_map"].start != LINUX_DIRECT_MAP_BASE


def test_hfi_config_is_unified_with_pico():
    m = build_machine(1, OSConfig.MCKERNEL_HFI)
    node = m.nodes[0]
    assert node.pico is not None
    validate_unification(node.linux.aspace, node.mckernel.aspace)
    assert node.mckernel.pico.lookup("/dev/hfi1_0") is node.pico
    assert node.mckernel.alloc.foreign_free_enabled


def test_driver_loaded_on_every_node():
    m = build_machine(3, OSConfig.LINUX)
    for node in m.nodes:
        assert node.linux.vfs.is_device("/dev/hfi1_0")
        assert node.node.hfi.irq_dispatcher is not None


def test_fabric_connects_all_nodes():
    m = build_machine(4, OSConfig.LINUX)
    assert len(m.fabric) == 4
    for node in m.nodes:
        assert node.node.hfi.fabric is m.fabric


def test_spawn_rank_pins_to_distinct_cores():
    m = build_machine(1, OSConfig.MCKERNEL)
    tasks = [m.spawn_rank(0, i) for i in range(8)]
    assert len({t.core_id for t in tasks}) == 8
    assert all(t.kernel is m.nodes[0].mckernel for t in tasks)


def test_spawn_rank_on_linux_config_avoids_os_cores():
    m = build_machine(1, OSConfig.LINUX)
    task = m.spawn_rank(0, 0)
    assert task.core_id >= m.params.node.os_cores


def test_zero_nodes_rejected():
    with pytest.raises(ReproError):
        build_machine(0, OSConfig.LINUX)


def test_kernel_profiler_tracer_wiring():
    """Figures 8-9 read the app kernel's syscall accounting: Linux's
    tracer in the LINUX config, McKernel's in the multi-kernel ones."""
    m = build_machine(1, OSConfig.MCKERNEL_HFI)
    assert m.nodes[0].mckernel.tracer is m.tracer
    assert m.nodes[0].linux.tracer is not m.tracer
    m2 = build_machine(1, OSConfig.LINUX)
    assert m2.nodes[0].linux.tracer is m2.tracer


def test_rcu_is_explicitly_unsupported():
    with pytest.raises(NotImplementedError, match="future work"):
        rcu_synchronize()
