"""Tests of the ``chaos --storage`` campaign: the sweep's intact-or-typed
contract, the recovery drill's eviction/readmit/goodput oracles, and the
report rendering."""

import pytest

from repro.config import ALL_CONFIGS, OSConfig
from repro.experiments.chaos import cmd_chaos
from repro.experiments.storage import (DRILL_SMOKE_PHASES, SMOKE_RATES,
                                       STORAGE_RECOVERY_BAR, run_storage)


@pytest.fixture(scope="module")
def result():
    """One full smoke campaign over every OS configuration."""
    return run_storage(smoke=True)


def test_campaign_has_no_contract_violations(result):
    assert result.violations == []


def test_sweep_covers_every_config_and_rate(result):
    cells = {(c.os_config, c.rate) for c in result.cells}
    assert cells == {(cfg, rate) for cfg in ALL_CONFIGS
                     for rate in SMOKE_RATES}


def test_zero_rate_cells_ack_everything(result):
    for cell in result.cells:
        if cell.rate == 0.0:
            assert cell.acked == cell.writes
            assert cell.failed_typed == 0
            assert cell.counters.get("pxd.evictions", 0) == 0


def test_faulted_cells_resolve_every_write(result):
    for cell in result.cells:
        assert cell.acked + cell.failed_typed == cell.writes
        assert cell.goodput > 0


def test_fast_path_carries_the_mckernel_hfi_cells(result):
    hfi = [c for c in result.cells
           if c.os_config is OSConfig.MCKERNEL_HFI]
    assert hfi
    for cell in hfi:
        assert cell.counters.get("pico.pxd_writes", 0) > 0
    linux = [c for c in result.cells if c.os_config is OSConfig.LINUX]
    for cell in linux:
        assert cell.counters.get("pico.pxd_writes", 0) == 0


def test_drills_evict_readmit_and_recover(result):
    assert {d.os_config for d in result.drills} == set(ALL_CONFIGS)
    for drill in result.drills:
        assert drill.evictions >= 1
        assert drill.readmits >= 1
        assert drill.recovery_ratio >= STORAGE_RECOVERY_BAR
        assert [p.name for p in drill.phases] \
            == [name for name, _count in DRILL_SMOKE_PHASES]
        assert drill.phase("baseline").failed_typed == 0


def test_render_reports_the_verdict(result):
    text = result.render()
    assert "storage contract" in text
    assert "recovery drills" in text
    for cfg in ALL_CONFIGS:
        assert cfg.label in text


def test_cmd_chaos_storage_smoke_exits_zero(capsys):
    rc = cmd_chaos(["--storage", "--smoke"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "storage contract" in out
