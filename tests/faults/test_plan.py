"""Unit tests for the fault plan and the seeded injector."""

import pytest

from repro.errors import ReproError
from repro.faults import (FAULT_POINTS, FaultInjector, FaultPlan,
                          ScheduledFault)
from repro.sim import RngFactory, Tracer


def make_injector(plan, seed=7, tracer=None):
    return FaultInjector(plan, RngFactory(seed).spawn("faults"), tracer)


def test_uniform_plan_sets_every_point():
    plan = FaultPlan.uniform(0.25)
    for point in FAULT_POINTS:
        assert plan.rate_of(point) == 0.25


def test_uniform_overrides_single_points():
    plan = FaultPlan.uniform(0.1, irq_lost=0.5)
    assert plan.rate_of("irq.lost") == 0.5
    assert plan.rate_of("fabric.drop") == 0.1


def test_unknown_fault_point_raises():
    with pytest.raises(ReproError):
        FaultPlan().rate_of("meteor.strike")
    with pytest.raises(ReproError):
        make_injector(FaultPlan.uniform(1.0)).fires("meteor.strike")


def test_zero_rate_never_touches_the_rng():
    """The bit-identity guarantee: a zero-rate point creates no stream."""
    inj = make_injector(FaultPlan())
    for point in FAULT_POINTS:
        for _ in range(10):
            assert not inj.fires(point)
    assert inj._streams == {}


def test_fires_is_deterministic_across_injectors():
    draws = []
    for _ in range(2):
        inj = make_injector(FaultPlan.uniform(0.3))
        draws.append([inj.fires("fabric.drop") for _ in range(200)])
    assert draws[0] == draws[1]
    assert any(draws[0]) and not all(draws[0])


def test_points_draw_from_disjoint_streams():
    """Interleaving draws on other points must not perturb a point's
    sequence (each point owns a dedicated keyed stream)."""
    plain = make_injector(FaultPlan.uniform(0.3))
    seq_plain = [plain.fires("fabric.drop") for _ in range(100)]
    mixed = make_injector(FaultPlan.uniform(0.3))
    seq_mixed = []
    for _ in range(100):
        mixed.fires("irq.lost")
        seq_mixed.append(mixed.fires("fabric.drop"))
        mixed.fires("sdma.desc_error")
    assert seq_plain == seq_mixed


def test_tracer_counts_each_firing():
    tracer = Tracer()
    inj = make_injector(FaultPlan.uniform(1.0), tracer=tracer)
    assert inj.fires("fabric.drop")
    assert inj.fires("fabric.drop")
    assert tracer.get_count("faults.fabric.drop") == 2
    assert tracer.get_count("faults.irq.lost") == 0


def test_describe_lists_nonzero_rates():
    assert FaultPlan().describe() == "no faults"
    text = FaultPlan.uniform(0.01).describe()
    for point in FAULT_POINTS:
        assert f"{point}=0.01" in text
    assert FaultPlan(irq_lost=0.5).describe() == "irq.lost=0.5"


# --- deterministic placement mode (the PicoCheck currency) -------------------

def test_scheduled_fault_validates_its_fields():
    with pytest.raises(ReproError):
        ScheduledFault("meteor.strike", 0)
    with pytest.raises(ReproError):
        ScheduledFault("irq.lost", -1)
    assert ScheduledFault("irq.lost", 2).describe() == "irq.lost@2"


def test_placed_plan_fires_exactly_at_the_scheduled_occurrence():
    inj = make_injector(FaultPlan.placed(ScheduledFault("irq.lost", 2)))
    assert [inj.fires("irq.lost") for _ in range(5)] \
        == [False, False, True, False, False]
    assert not any(inj.fires("fabric.drop") for _ in range(3))


def test_deterministic_mode_ignores_rates_and_never_draws():
    """Rates on a deterministic plan are inert: rate 1.0 without a
    placement never fires and — the satellite guarantee — no RNG
    stream is ever created."""
    inj = make_injector(FaultPlan.placed(ScheduledFault("irq.lost", 0),
                                         fabric_corrupt=1.0))
    assert not any(inj.fires("fabric.corrupt") for _ in range(10))
    assert inj.fires("irq.lost")
    assert inj._streams == {}


def test_zero_scheduled_faults_leave_all_rng_streams_untouched():
    inj = make_injector(FaultPlan.placed())
    for point in FAULT_POINTS:
        for _ in range(10):
            assert not inj.fires(point)
    assert inj._streams == {}


def test_empty_placed_plan_doubles_as_opportunity_census():
    inj = make_injector(FaultPlan.placed())
    for _ in range(3):
        inj.fires("irq.lost")
    inj.fires("fabric.drop")
    assert inj.occurrences == {"irq.lost": 3, "fabric.drop": 1}


def test_rate_based_plans_do_not_pay_the_census_bookkeeping():
    inj = make_injector(FaultPlan.uniform(0.3))
    for _ in range(5):
        inj.fires("fabric.drop")
    assert inj.occurrences == {}


def test_deterministic_describe():
    assert FaultPlan.placed().describe() == "no faults (deterministic)"
    plan = FaultPlan.placed(ScheduledFault("irq.lost", 2),
                            ScheduledFault("fabric.drop", 0))
    assert plan.describe() == "placed: irq.lost@2, fabric.drop@0"


def test_tracer_counts_only_the_scheduled_firing():
    tracer = Tracer()
    inj = make_injector(FaultPlan.placed(ScheduledFault("irq.lost", 1)),
                        tracer=tracer)
    for _ in range(4):
        inj.fires("irq.lost")
    assert tracer.get_count("faults.irq.lost") == 1
