"""End-to-end recovery: injected faults either heal transparently
(halt/restart, retransmit, IRQ watchdog, TID retry) or surface as the
typed errors the tentpole contract promises."""

from dataclasses import replace

import pytest

from repro.config import OSConfig, enable_fault_injection
from repro.errors import DeviceTimeout, TransferCorrupt
from repro.experiments import build_machine
from repro.faults import FaultPlan
from repro.params import default_params
from repro.psm import Endpoint, TagMatcher
from repro.units import KiB, MiB


def build_faulty_machine(plan, os_config=OSConfig.LINUX, params=None):
    """A 2-node machine with ``plan`` installed (injection stays enabled
    for the machine's lifetime; callers rely on the module-level teardown
    in :func:`run_transfers` to restore the global config)."""
    enable_fault_injection(plan)
    return build_machine(2, os_config, params=params)


def run_transfers(plan, sizes, os_config=OSConfig.LINUX, params=None):
    """One sender, one receiver, one message per entry of ``sizes``.

    Returns ``(machine, send outcomes, receive requests)`` where an
    outcome is ``"ok"`` or the typed exception the blocking send raised.
    """
    try:
        machine = build_faulty_machine(plan, os_config, params)
        sim = machine.sim
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        bufsize = 2 * max(sizes)
        outcomes = {}
        reqs = {}

        def sender():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", bufsize)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            for i, size in enumerate(sizes):
                try:
                    yield from ep0.mq_send(ep1.addr, ("t", i), buf, size,
                                           payload=("p", i))
                    outcomes[i] = "ok"
                except (DeviceTimeout, TransferCorrupt) as exc:
                    outcomes[i] = exc

        def receiver():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", bufsize)
            for i, _size in enumerate(sizes):
                reqs[i] = ep1.mq_irecv(TagMatcher(tag=("t", i)),
                                       (buf, bufsize))

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        return machine, outcomes, reqs
    finally:
        enable_fault_injection(None)


def delivered(req):
    return req.event.triggered and req.event.exception is None


def test_zero_rate_plan_delivers_without_drawing_faults():
    machine, outcomes, reqs = run_transfers(
        FaultPlan(), [4 * KiB, 96 * KiB, 1 * MiB])
    assert all(v == "ok" for v in outcomes.values())
    assert all(delivered(r) for r in reqs.values())
    assert not any(k.startswith("faults.")
                   for k in machine.tracer.counters)


@pytest.mark.parametrize("os_config",
                         [OSConfig.LINUX, OSConfig.MCKERNEL_HFI])
def test_sdma_desc_error_halts_and_recovers(os_config):
    """Descriptor errors freeze the engine; the driver's halt/restart
    state machine brings it back and the transfer still lands."""
    machine, outcomes, reqs = run_transfers(
        FaultPlan(sdma_desc_error=0.05), [1 * MiB], os_config)
    assert outcomes[0] == "ok" and delivered(reqs[0])
    halts = machine.tracer.get_count("hfi.sdma_halts")
    assert halts > 0
    assert machine.tracer.get_count("hfi.sdma_restarts") == halts
    assert machine.tracer.get_count("hfi.sdma_recoveries") >= 1


def test_spontaneous_engine_halt_recovers():
    machine, outcomes, reqs = run_transfers(
        FaultPlan(sdma_engine_halt=0.05), [1 * MiB])
    assert outcomes[0] == "ok" and delivered(reqs[0])
    assert machine.tracer.get_count("faults.sdma.engine_halt") > 0
    assert machine.tracer.get_count("hfi.sdma_restarts") > 0


def test_lost_completion_irq_is_recovered_by_watchdog():
    """Every completion interrupt dropped: the deferred redelivery path
    must complete every transfer anyway."""
    machine, outcomes, reqs = run_transfers(
        FaultPlan(irq_lost=1.0), [96 * KiB])
    assert outcomes[0] == "ok" and delivered(reqs[0])
    assert machine.tracer.get_count("hfi.irq_recovered") >= 1


def test_fabric_drops_are_retransmitted():
    machine, outcomes, reqs = run_transfers(
        FaultPlan(fabric_drop=0.3), [4 * KiB] * 4)
    assert all(v == "ok" for v in outcomes.values())
    assert all(delivered(r) for r in reqs.values())
    assert machine.tracer.get_count("psm.retransmits") > 0


def test_corruption_is_detected_and_healed():
    machine, outcomes, reqs = run_transfers(
        FaultPlan(fabric_corrupt=0.3), [4 * KiB] * 4)
    assert all(v == "ok" for v in outcomes.values())
    assert all(delivered(r) for r in reqs.values())
    assert machine.tracer.get_count("psm.corrupt_drops") > 0


def test_total_blackout_surfaces_device_timeout():
    """With every packet dropped the retry budget runs out and the
    blocking send raises the typed error (the same event MPI_Wait
    yields on, so the error reaches MPI callers identically)."""
    machine, outcomes, reqs = run_transfers(
        FaultPlan(fabric_drop=1.0), [4 * KiB])
    assert isinstance(outcomes[0], DeviceTimeout)
    assert not reqs[0].event.triggered
    assert machine.tracer.get_count("psm.send_failures") == 1
    assert (machine.tracer.get_count("psm.retransmits")
            == machine.params.psm.max_retries)


def test_rendezvous_blackout_times_out_via_rts_watchdog():
    machine, outcomes, _reqs = run_transfers(
        FaultPlan(fabric_drop=1.0), [1 * MiB])
    assert isinstance(outcomes[0], DeviceTimeout)
    assert "RTS" in str(outcomes[0]) or "rendezvous" in str(outcomes[0])


def test_transient_tid_failures_are_retried():
    machine, outcomes, reqs = run_transfers(
        FaultPlan(tid_transient=0.5), [1 * MiB])
    assert outcomes[0] == "ok" and delivered(reqs[0])
    assert machine.tracer.get_count("psm.tid_retries") > 0


@pytest.mark.parametrize("os_config",
                         [OSConfig.LINUX, OSConfig.MCKERNEL_HFI])
def test_persistent_payload_corruption_raises_transfer_corrupt(os_config):
    """If every expected-data packet arrives corrupted, the receiver's
    CTS watchdog exhausts its budget and fails the receive with
    TransferCorrupt (not a bare timeout)."""
    try:
        machine = build_faulty_machine(FaultPlan(), os_config)
        sim = machine.sim
        t0 = machine.spawn_rank(0, 0, 0)
        t1 = machine.spawn_rank(1, 0, 1)
        ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                       tracer=machine.tracer)
        ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                       tracer=machine.tracer)
        hfi_b = machine.nodes[1].node.hfi
        orig_receive = hfi_b.receive

        def corrupting_receive(pkt):
            if pkt.kind == "expected":
                pkt = replace(pkt, csum=(pkt.csum or 0) ^ 1)
            orig_receive(pkt)

        hfi_b.receive = corrupting_receive
        reqs = {}

        def sender():
            yield from ep0.open()
            buf = yield from t0.syscall("mmap", 2 * MiB)
            while ep1.addr is None:
                yield sim.timeout(1e-6)
            # non-blocking: the send side legitimately never completes
            # (its windows are re-requested until the receiver gives up)
            yield from ep0.mq_isend(ep1.addr, ("t", 0), buf, 1 * MiB)

        def receiver():
            yield from ep1.open()
            buf = yield from t1.syscall("mmap", 2 * MiB)
            reqs[0] = ep1.mq_irecv(TagMatcher(tag=("t", 0)),
                                   (buf, 2 * MiB))

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert reqs[0].event.triggered
        assert isinstance(reqs[0].event.exception, TransferCorrupt)
        assert machine.tracer.get_count("psm.corrupt_drops") > 0
        assert machine.tracer.get_count("psm.recv_failures") == 1
    finally:
        enable_fault_injection(None)


def test_pico_fast_path_falls_back_on_halted_engine():
    """The acceptance counter: with engine halts injected and a single
    SDMA engine, the PicoDriver fast path must decline at least once and
    the dispatcher re-issue over the offload path."""
    params = default_params()
    params = params.with_overrides(
        nic=replace(params.nic, sdma_engines=1))
    machine, outcomes, reqs = run_transfers(
        FaultPlan(sdma_desc_error=0.05), [1 * MiB] * 2,
        OSConfig.MCKERNEL_HFI, params=params)
    assert all(v == "ok" for v in outcomes.values())
    assert all(delivered(r) for r in reqs.values())
    assert machine.tracer.get_count("pico.fallbacks") >= 1
    assert machine.tracer.get_count("pico.fallback.writev") >= 1
