"""Tests for the PicoGuard fast-path health manager."""
