"""The PathBreaker FSM: failover thresholds, probe backoff, failback
hysteresis and transition legality."""

import pytest

from repro.errors import ReproError
from repro.guard import (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_PROBING,
                         GuardPolicy, PathBreaker)
from repro.guard.breaker import LEGAL_TRANSITIONS
from repro.sim import Simulator, Tracer
from repro.units import USEC

POLICY_KW = dict(failure_window=4, failure_threshold=2, probe_successes=2,
                 probe_backoff=100 * USEC, probe_backoff_factor=2.0,
                 probe_backoff_max=400 * USEC,
                 qdepth=8, nr_congestion_on=6, nr_congestion_off=2)


def make_breaker(**overrides):
    sim = Simulator()
    policy = GuardPolicy(**{**POLICY_KW, **overrides})
    tracer = Tracer()
    breaker = PathBreaker(sim, policy, "node0", "engine0", tracer=tracer)
    return sim, tracer, breaker


def open_breaker(breaker):
    for _ in range(breaker.policy.failure_threshold):
        breaker.record_failure("test fault")
    assert breaker.state == BREAKER_OPEN


def test_starts_closed_and_admitting():
    _sim, _tracer, b = make_breaker()
    assert b.state == BREAKER_CLOSED
    assert b.admits()
    assert b.transitions == []


def test_failures_below_threshold_stay_closed():
    _sim, tracer, b = make_breaker()
    b.record_failure("one-off")
    assert b.state == BREAKER_CLOSED and b.admits()
    assert tracer.counters.get("guard.failovers", 0) == 0


def test_opens_at_threshold_and_stops_admitting():
    _sim, tracer, b = make_breaker()
    open_breaker(b)
    assert not b.admits()
    assert tracer.counters["guard.failovers"] == 1
    assert tracer.counters["guard.failovers.node0.engine0"] == 1
    assert b.transitions[-1][1:3] == (BREAKER_CLOSED, BREAKER_OPEN)


def test_window_slides_old_failures_out():
    """Window 4 / threshold 2: a failure, three successes, then another
    failure — the first failure has aged out, so the breaker holds."""
    _sim, _tracer, b = make_breaker()
    b.record_failure()
    for _ in range(3):
        b.record_success()
    b.record_failure()
    assert b.state == BREAKER_CLOSED


def test_probe_timer_moves_open_to_probing():
    sim, _tracer, b = make_breaker()
    open_breaker(b)
    sim.run()
    assert b.state == BREAKER_PROBING
    assert sim.now == pytest.approx(b.policy.probe_backoff)


def test_probing_admits_exactly_one_probe():
    sim, _tracer, b = make_breaker()
    open_breaker(b)
    sim.run()
    assert b.admits()
    b.begin_probe()
    assert not b.admits()


def test_failback_after_consecutive_probe_successes():
    sim, tracer, b = make_breaker()
    open_breaker(b)
    sim.run()
    b.begin_probe()
    b.record_success()
    assert b.state == BREAKER_PROBING  # hysteresis: one win is not enough
    b.begin_probe()
    b.record_success()
    assert b.state == BREAKER_CLOSED
    assert tracer.counters["guard.failbacks"] == 1
    assert b.backoff == pytest.approx(b.policy.probe_backoff)
    # the failure window was wiped: old faults cannot re-open the breaker
    assert b._failure_count() == 0


def test_probe_failure_reopens_and_grows_backoff():
    sim, _tracer, b = make_breaker()
    open_breaker(b)
    sim.run()
    b.begin_probe()
    b.record_failure("probe bounced")
    assert b.state == BREAKER_OPEN
    assert b.backoff == pytest.approx(200 * USEC)
    sim.run()
    assert b.state == BREAKER_PROBING
    b.begin_probe()
    b.record_failure("probe bounced again")
    assert b.backoff == pytest.approx(400 * USEC)
    b.record_failure()  # while OPEN: window only, backoff untouched
    sim.run()
    b.begin_probe()
    b.record_failure("third bounce")
    assert b.backoff == pytest.approx(400 * USEC)  # capped at the max


def test_success_while_open_is_legal_and_harmless():
    """A request admitted before failover may complete late; it must not
    close the breaker or register as a transition."""
    _sim, _tracer, b = make_breaker()
    open_breaker(b)
    n_transitions = len(b.transitions)
    b.record_success()
    assert b.state == BREAKER_OPEN
    assert len(b.transitions) == n_transitions


def test_begin_probe_outside_probing_raises():
    sim, _tracer, b = make_breaker()
    with pytest.raises(ReproError):
        b.begin_probe()
    open_breaker(b)
    with pytest.raises(ReproError):
        b.begin_probe()


def test_full_cycle_uses_only_legal_edges():
    sim, _tracer, b = make_breaker(probe_successes=1)
    for _round in range(3):
        open_breaker(b)
        sim.run()
        b.begin_probe()
        b.record_success()
        assert b.state == BREAKER_CLOSED
    assert len(b.transitions) == 9
    assert all((old, new) in LEGAL_TRANSITIONS
               for _t, old, new, _r in b.transitions)


def test_policy_validates_itself():
    with pytest.raises(ReproError):
        GuardPolicy(**{**POLICY_KW, "failure_threshold": 9})  # > window
    with pytest.raises(ReproError):
        GuardPolicy(**{**POLICY_KW, "nr_congestion_off": 7})  # off >= on
    with pytest.raises(ReproError):
        GuardPolicy(**{**POLICY_KW, "probe_backoff": 0.0})
