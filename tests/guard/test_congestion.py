"""CongestionGate watermark semantics: high/low hysteresis, FIFO
parking, and the oversized-group-admitted-alone rule."""

from repro.guard import CongestionGate, GuardPolicy
from repro.sim import Simulator, Tracer
from repro.units import USEC

POLICY_KW = dict(failure_window=4, failure_threshold=2, probe_successes=2,
                 probe_backoff=100 * USEC, probe_backoff_factor=2.0,
                 probe_backoff_max=400 * USEC,
                 qdepth=8, nr_congestion_on=6, nr_congestion_off=2)


class DrainLog:
    """Stand-in manager recording note_drain callbacks."""

    def __init__(self):
        self.calls = 0

    def note_drain(self):
        self.calls += 1


def make_gate(manager=None):
    sim = Simulator()
    tracer = Tracer()
    gate = CongestionGate(sim, GuardPolicy(**POLICY_KW), "node0", "engine0",
                          tracer=tracer, manager=manager)
    return sim, tracer, gate


def acquire(sim, gate, n, order=None, tag=None):
    """Spawn a process acquiring ``n`` slots; record ``tag`` on grant."""
    def body():
        yield from gate.acquire_slots(n)
        if order is not None:
            order.append(tag)
    return sim.process(body())


def test_uncongested_acquire_is_immediate():
    sim, tracer, gate = make_gate()
    acquire(sim, gate, 4)
    sim.run()
    assert gate.outstanding == 4 and not gate.congested
    assert "guard.congestion_waits" not in tracer.counters


def test_congests_at_high_watermark_only():
    sim, tracer, gate = make_gate()
    acquire(sim, gate, 5)
    sim.run()
    assert not gate.congested
    acquire(sim, gate, 1)
    sim.run()
    assert gate.congested
    assert tracer.counters["guard.congestion_on"] == 1


def test_clears_at_low_watermark_with_hysteresis():
    sim, tracer, gate = make_gate()
    acquire(sim, gate, 6)
    sim.run()
    gate.release_slots(3)  # outstanding 3: above off-mark, still congested
    assert gate.congested
    gate.release_slots(1)  # outstanding 2 == nr_congestion_off: clears
    assert not gate.congested
    assert tracer.counters["guard.congestion_off"] == 1


def test_congested_acquire_parks_until_drain():
    sim, tracer, gate = make_gate()
    order = []
    acquire(sim, gate, 6)
    sim.run()
    acquire(sim, gate, 2, order, "late")
    sim.run()
    assert order == [] and gate.outstanding == 6
    assert tracer.counters["guard.congestion_waits"] == 1
    gate.release_slots(4)
    sim.run()
    assert order == ["late"] and gate.outstanding == 4


def test_fifo_no_overtaking():
    """A small reservation behind a large one never jumps the queue,
    even when it alone would fit."""
    sim, _tracer, gate = make_gate()
    order = []
    acquire(sim, gate, 6)
    sim.run()
    acquire(sim, gate, 8, order, "big")
    acquire(sim, gate, 1, order, "small")
    sim.run()
    gate.release_slots(5)  # outstanding 1: uncongested, but big won't fit
    sim.run()
    assert order == []  # small stayed parked behind big
    gate.release_slots(1)  # idle: big admitted alone, small still waits
    sim.run()
    assert order == ["big"]
    gate.release_slots(8)
    sim.run()
    assert order == ["big", "small"]


def test_oversized_group_admitted_alone_when_idle():
    """A group larger than qdepth (a multi-hundred descriptor rendezvous
    window) must not wedge: an idle gate admits it alone."""
    sim, _tracer, gate = make_gate()
    order = []
    acquire(sim, gate, 20, order, "huge")
    sim.run()
    assert order == ["huge"]
    assert gate.outstanding == 20 and gate.congested


def test_oversized_group_waits_while_busy():
    sim, _tracer, gate = make_gate()
    order = []
    acquire(sim, gate, 4)
    sim.run()
    acquire(sim, gate, 20, order, "huge")
    sim.run()
    assert order == []
    gate.release_slots(4)
    sim.run()
    assert order == ["huge"] and gate.outstanding == 20


def test_release_clamps_at_zero_and_notifies_manager():
    log = DrainLog()
    sim, _tracer, gate = make_gate(manager=log)
    acquire(sim, gate, 3)
    sim.run()
    gate.release_slots(5)
    assert gate.outstanding == 0
    assert log.calls == 1
