"""The PD013 runtime contract: with the guard disabled, the paper's
figures are bit-identical to a build that never loaded the guard plane
— enabling and disabling it between runs leaves no residue."""

from repro.config import OSConfig, enable_guard
from repro.experiments import build_machine, run_fig4, run_fig5a
from repro.guard import GuardPolicy
from repro.units import KiB

FIG4_SIZES = (16 * KiB,)
FIG5_NODES = (2,)


def exercise_guarded_machine():
    """Build and run a guarded machine so the guard plane demonstrably
    touched state between the baseline and comparison runs."""
    enable_guard(GuardPolicy())
    try:
        machine = build_machine(2, OSConfig.MCKERNEL_HFI)
        guard = machine.nodes[0].guard
        assert guard is not None
        for i in range(len(guard.gates)):
            guard.record_failure(guard.engine_path(i), "identity drill")
        machine.sim.run()
    finally:
        enable_guard(None)


def test_fig4_bit_identical_around_a_guarded_run():
    baseline = run_fig4(sizes=FIG4_SIZES, repetitions=1)
    exercise_guarded_machine()
    after = run_fig4(sizes=FIG4_SIZES, repetitions=1)
    assert after.series == baseline.series


def test_fig5_bit_identical_around_a_guarded_run():
    baseline = run_fig5a(node_counts=FIG5_NODES, iterations=1)
    exercise_guarded_machine()
    after = run_fig5a(node_counts=FIG5_NODES, iterations=1)
    assert after.relative == baseline.relative
