"""The guard plane wired into a live machine: build-time installation,
dispatch-time routing, failback under traffic, and suspend/resume with
queued-IO replay."""

import pytest

from repro.config import OSConfig, enable_guard
from repro.experiments import build_machine
from repro.guard import BREAKER_CLOSED, GuardPolicy
from repro.sim import Event
from repro.units import KiB, USEC

GUARDED_KW = dict(failure_window=4, failure_threshold=1, probe_successes=1,
                  probe_backoff=50 * USEC, probe_backoff_factor=2.0,
                  probe_backoff_max=400 * USEC,
                  qdepth=32, nr_congestion_on=24, nr_congestion_off=8)


@pytest.fixture
def guarded_machine():
    enable_guard(GuardPolicy(**GUARDED_KW))
    try:
        yield build_machine(2, OSConfig.MCKERNEL_HFI)
    finally:
        enable_guard(None)


def send_eager(machine, nbytes=256 * KiB, node=0):
    """One eager writev from ``node`` to a sink context on the peer."""
    peer = 1 - node
    machine.nodes[peer].node.hfi.alloc_context("sink")

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", nbytes)
        done = Event(machine.sim)
        meta = {"dst_node": peer, "dst_ctxt": 0, "kind": "eager",
                "completion": done}
        n = yield from task.syscall("writev", fd, [meta, (buf, nbytes)])
        yield done
        return n

    task = machine.spawn_rank(node, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    return proc


def test_build_installs_guard_on_every_node(guarded_machine):
    for mnode in guarded_machine.nodes:
        assert mnode.guard is not None
        assert mnode.driver.guard is mnode.guard
        # gates are index-aligned with the device's engines
        for eng in mnode.node.hfi.engines:
            assert eng.gate is mnode.guard.gates[eng.index]


def test_build_without_guard_leaves_plane_absent():
    machine = build_machine(2, OSConfig.MCKERNEL_HFI)
    for mnode in machine.nodes:
        assert mnode.guard is None and mnode.driver.guard is None
        assert all(eng.gate is None for eng in mnode.node.hfi.engines)


def test_all_breakers_open_routes_writev_to_offload(guarded_machine):
    machine = guarded_machine
    guard = machine.nodes[0].guard
    for i in range(len(guard.gates)):
        guard.record_failure(guard.engine_path(i), "forced down")
    proc = send_eager(machine)
    assert proc.ok and proc.value == 256 * KiB
    assert machine.tracer.get_count("guard.routed_offload") >= 1
    assert machine.tracer.get_count("guard.routed_offload.writev") >= 1
    # the offloaded delivery fed the offload breaker, not an engine's
    assert guard.breakers["offload"].window


def test_probe_success_fails_back_under_traffic(guarded_machine):
    machine = guarded_machine
    guard = machine.nodes[0].guard
    for i in range(len(guard.gates)):
        guard.record_failure(guard.engine_path(i), "forced down")
    machine.sim.run()  # probe backoff elapses, breakers turn PROBING
    proc = send_eager(machine)  # the probe: one writev down the fast path
    assert proc.ok
    assert machine.tracer.get_count("guard.failbacks") >= 1
    assert any(guard.breakers[guard.engine_path(i)].state == BREAKER_CLOSED
               for i in range(len(guard.gates)))


def test_suspend_parks_live_traffic_and_resume_replays(guarded_machine):
    machine = guarded_machine
    sim = machine.sim
    guard = machine.nodes[0].guard
    machine.nodes[1].node.hfi.alloc_context("sink")

    def suspender():
        yield from guard.suspend()

    sim.process(suspender())
    sim.run()
    assert guard.suspended

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 256 * KiB)
        done = Event(sim)
        meta = {"dst_node": 1, "dst_ctxt": 0, "kind": "eager",
                "completion": done}
        n = yield from task.syscall("writev", fd, [meta, (buf, 256 * KiB)])
        yield done
        return n

    task = machine.spawn_rank(0, 0)
    proc = sim.process(body(task))
    sim.run()
    assert not proc.triggered  # parked: the device is quiescent
    assert machine.tracer.get_count("guard.parked") >= 1
    guard.resume()
    sim.run()
    assert proc.ok and proc.value == 256 * KiB
    assert machine.tracer.get_count("guard.resumes") == 1
