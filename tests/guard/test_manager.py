"""GuardManager: dispatch-time admission, healthy-engine selection,
suspend/resume parking, and the PicoCheck oracle surface."""

from types import SimpleNamespace

import pytest

from repro.errors import FastPathUnavailable, ReproError
from repro.guard import (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_PROBING,
                         GuardManager, GuardPolicy)
from repro.sim import Simulator, Tracer
from repro.units import USEC

POLICY_KW = dict(failure_window=4, failure_threshold=1, probe_successes=1,
                 probe_backoff=100 * USEC, probe_backoff_factor=2.0,
                 probe_backoff_max=400 * USEC,
                 qdepth=8, nr_congestion_on=6, nr_congestion_off=2)


def make_manager(n_engines=2):
    sim = Simulator()
    tracer = Tracer()
    manager = GuardManager(sim, GuardPolicy(**POLICY_KW), n_engines,
                           tracer=tracer, label="node0")
    hfi = SimpleNamespace(engines=[SimpleNamespace(index=i)
                                   for i in range(n_engines)])
    return sim, tracer, manager, hfi


def test_paths_cover_engines_plus_offload():
    _sim, _tracer, manager, _hfi = make_manager(3)
    assert set(manager.breakers) == {"engine0", "engine1", "engine2",
                                     "offload"}
    assert len(manager.gates) == 3
    assert manager.gate_for(1) is manager.gates[1]


def test_admits_only_gates_writev():
    _sim, _tracer, manager, _hfi = make_manager()
    for path in ("engine0", "engine1"):
        manager.record_failure(path, "down")
    assert not manager.admits("writev")
    # PIO sends and TID updates never depend on SDMA engine health
    assert manager.admits("ioctl") and manager.admits("read")


def test_admits_writev_while_any_engine_lives():
    _sim, _tracer, manager, _hfi = make_manager()
    manager.record_failure("engine0", "down")
    assert manager.admits("writev")
    # the offload breaker is record-only: opening it changes nothing
    manager.record_failure("offload", "proxy sick")
    assert manager.admits("writev")


def test_pick_healthy_engine_routes_around_open_breaker():
    _sim, _tracer, manager, hfi = make_manager()
    manager.record_failure("engine0", "down")
    picked = {manager.pick_healthy_engine(hfi).index for _ in range(4)}
    assert picked == {1}


def test_pick_healthy_engine_raises_when_all_down():
    _sim, _tracer, manager, hfi = make_manager()
    manager.record_failure("engine0", "down")
    manager.record_failure("engine1", "down")
    with pytest.raises(FastPathUnavailable):
        manager.pick_healthy_engine(hfi)


def test_probing_pick_marks_the_probe_in_flight():
    sim, tracer, manager, hfi = make_manager(1)
    manager.record_failure("engine0", "down")
    sim.run()  # probe backoff elapses
    breaker = manager.breakers["engine0"]
    assert breaker.state == BREAKER_PROBING
    assert manager.pick_healthy_engine(hfi).index == 0
    assert breaker.probe_inflight
    assert tracer.counters["guard.probes"] == 1
    with pytest.raises(FastPathUnavailable):
        manager.pick_healthy_engine(hfi)  # one probe at a time
    manager.record_success("engine0")
    assert breaker.state == BREAKER_CLOSED


def test_suspend_waits_for_gates_to_drain():
    sim, tracer, manager, _hfi = make_manager()
    manager.gates[0]._admit(3)
    done = []

    def suspender():
        yield from manager.suspend()
        done.append(sim.now)

    sim.process(suspender())
    sim.run()
    assert manager.suspended and done == []  # in-flight work still draining
    manager.gates[0].release_slots(3)
    sim.run()
    assert done  # drain observed via note_drain
    assert tracer.counters["guard.suspends"] == 1


def test_park_and_resume_replays_in_arrival_order():
    sim, tracer, manager, _hfi = make_manager()

    def suspender():
        yield from manager.suspend()

    sim.process(suspender())
    sim.run()
    order = []

    def request(tag):
        yield from manager.park_if_suspended()
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(request(tag))
    sim.run()
    assert order == [] and tracer.counters["guard.parked"] == 3
    manager.resume()
    sim.run()
    assert order == ["a", "b", "c"]
    assert tracer.counters["guard.resumes"] == 1


def test_park_is_a_noop_while_live():
    sim, tracer, manager, _hfi = make_manager()
    order = []

    def request():
        yield from manager.park_if_suspended()
        order.append("ran")

    sim.process(request())
    sim.run()
    assert order == ["ran"]
    assert "guard.parked" not in tracer.counters


def test_double_suspend_and_stray_resume_raise():
    sim, _tracer, manager, _hfi = make_manager()
    with pytest.raises(ReproError):
        manager.resume()

    def suspender():
        yield from manager.suspend()

    sim.process(suspender())
    sim.run()
    with pytest.raises(ReproError):
        next(manager.suspend())


def test_fsm_violations_flags_illegal_edges():
    sim, _tracer, manager, hfi = make_manager(1)
    manager.record_failure("engine0", "down")
    sim.run()
    manager.record_success("engine0")  # legal full cycle
    assert manager.fsm_violations() == []
    manager.breakers["engine0"].transitions.append(
        (sim.now, BREAKER_CLOSED, BREAKER_PROBING, "forged"))
    bad = manager.fsm_violations()
    assert len(bad) == 1 and "illegal closed->probing" in bad[0]


def test_negative_gate_accounting_is_a_violation():
    _sim, _tracer, manager, _hfi = make_manager()
    manager.gates[0].outstanding = -1
    manager._outstanding_total()
    assert any("negative" in v for v in manager.violations)


def test_snapshot_summarises_paths_and_gates():
    _sim, _tracer, manager, _hfi = make_manager()
    manager.record_failure("engine1", "down")
    snap = manager.snapshot()
    assert snap["suspended"] is False and snap["parked"] == 0
    assert snap["paths"]["engine0"]["state"] == BREAKER_CLOSED
    assert snap["paths"]["engine1"]["state"] == BREAKER_OPEN
    assert [g["path"] for g in snap["gates"]] == ["engine0", "engine1"]
