"""Unit tests for the pxd block device: replica medias, service queues,
IRQ delivery and the storage fault points (drawn deterministically via
placed plans)."""

from dataclasses import replace

import pytest

from repro.config import enable_fault_injection
from repro.errors import DriverError, MediaError, ReproError
from repro.faults import FaultInjector, FaultPlan, ScheduledFault
from repro.hw.blockdev import BlockDevice, BlockIo
from repro.params import default_params
from repro.sim import Simulator


def make_dev(replicas=2, plan=None):
    sim = Simulator()
    params = replace(default_params().blk, replicas=replicas)
    dev = BlockDevice(sim, params, node_id=0)
    done = []
    dev.irq_dispatcher = done.append
    if plan is not None:
        dev.injector = FaultInjector(plan, None, tracer=dev.tracer)
    return sim, params, dev, done


def write_io(sector_size, replica=0, sector=0, nsectors=1, fill=0x5A):
    return BlockIo(op="write", replica=replica, sector=sector,
                   nsectors=nsectors,
                   payload=bytes([fill]) * (nsectors * sector_size))


def test_zero_replicas_refused():
    sim = Simulator()
    params = default_params().blk
    assert params.replicas == 0  # figure machines grow no block device
    with pytest.raises(ReproError):
        BlockDevice(sim, params, node_id=0)


def test_write_lands_and_completes_after_media_time():
    sim, params, dev, done = make_dev()
    io = write_io(params.sector_size, nsectors=2)
    dev.submit(io)
    sim.run()
    assert done == [io] and io.status is None
    assert dev.replicas[0].peek(0, 2) == io.payload
    assert dev.replicas[1].peek(0, 2) == bytes(2 * params.sector_size)
    expected = params.media_latency + len(io.payload) / params.media_bandwidth
    assert sim.now == pytest.approx(expected)


def test_read_returns_media_bytes():
    sim, params, dev, done = make_dev()
    dev.replicas[1].poke(4, b"\xAB" * params.sector_size)
    io = BlockIo(op="read", replica=1, sector=4, nsectors=1)
    dev.submit(io)
    sim.run()
    assert io.status is None
    assert io.data == b"\xAB" * params.sector_size


def test_queue_serializes_per_replica_but_replicas_drain_in_parallel():
    sim, params, dev, done = make_dev()
    for r in (0, 0, 1):
        dev.submit(write_io(params.sector_size, replica=r, sector=r))
    sim.run()
    per_io = params.media_latency + params.sector_size / params.media_bandwidth
    # replica 0 served two IOs back to back; replica 1 one in parallel
    assert sim.now == pytest.approx(2 * per_io)
    assert len(done) == 3


def test_bad_sector_range_rejected_at_submit():
    sim, params, dev, done = make_dev()
    with pytest.raises(DriverError):
        dev.submit(BlockIo(op="read", replica=0, sector=params.sectors,
                           nsectors=1))
    with pytest.raises(DriverError):
        dev.submit(BlockIo(op="read", replica=0, sector=0, nsectors=0))
    with pytest.raises(DriverError):
        dev.submit(write_io(params.sector_size, replica=5))
    with pytest.raises(DriverError):
        dev.submit(BlockIo(op="trim", replica=0, sector=0, nsectors=1))


def test_short_write_payload_rejected():
    sim, params, dev, done = make_dev()
    with pytest.raises(DriverError):
        dev.submit(BlockIo(op="write", replica=0, sector=0, nsectors=2,
                           payload=b"x" * params.sector_size))


def test_irq_without_dispatcher_is_a_wiring_error():
    sim, params, dev, done = make_dev()
    dev.irq_dispatcher = None
    dev.submit(write_io(params.sector_size))
    sim.run()
    assert isinstance(dev._procs[0].exception, ReproError)


def test_offline_path_fails_io_typed_until_reattach():
    sim, params, dev, done = make_dev()
    dev.replicas[0].online = False
    io = write_io(params.sector_size)
    dev.submit(io)
    sim.run()
    assert isinstance(io.status, MediaError) and io.status.replica == 0
    assert dev.replicas[0].peek(0, 1) == bytes(params.sector_size)
    dev.replicas[0].reattach()
    retry = write_io(params.sector_size)
    dev.submit(retry)
    sim.run()
    assert retry.status is None


def test_path_loss_fault_knocks_the_replica_offline():
    plan = FaultPlan.placed(ScheduledFault("pxd.path_loss", 0))
    enable_fault_injection(plan)
    try:
        sim, params, dev, done = make_dev(plan=plan)
        io = write_io(params.sector_size)
        dev.submit(io)
        sim.run()
        assert not dev.replicas[0].online
        assert isinstance(io.status, MediaError)
        assert dev.tracer.get_count("blk.path_loss") == 1
    finally:
        enable_fault_injection(None)


def test_torn_write_lands_a_prefix_and_fails_typed():
    plan = FaultPlan.placed(ScheduledFault("media.torn_write", 0))
    enable_fault_injection(plan)
    try:
        sim, params, dev, done = make_dev(plan=plan)
        io = write_io(params.sector_size, nsectors=2, fill=0x77)
        dev.submit(io)
        sim.run()
        assert isinstance(io.status, MediaError)
        got = dev.replicas[0].peek(0, 2)
        torn = len(io.payload) // 2
        assert got[:torn] == io.payload[:torn]          # the tear landed
        assert got[torn:] == bytes(len(got) - torn)      # the rest did not
    finally:
        enable_fault_injection(None)


def test_write_error_leaves_media_untouched():
    plan = FaultPlan.placed(ScheduledFault("media.write_error", 0))
    enable_fault_injection(plan)
    try:
        sim, params, dev, done = make_dev(plan=plan)
        io = write_io(params.sector_size)
        dev.submit(io)
        sim.run()
        assert isinstance(io.status, MediaError)
        assert dev.replicas[0].peek(0, 1) == bytes(params.sector_size)
    finally:
        enable_fault_injection(None)


def test_read_error_is_typed():
    plan = FaultPlan.placed(ScheduledFault("media.read_error", 0))
    enable_fault_injection(plan)
    try:
        sim, params, dev, done = make_dev(plan=plan)
        io = BlockIo(op="read", replica=0, sector=0, nsectors=1)
        dev.submit(io)
        sim.run()
        assert isinstance(io.status, MediaError)
        assert io.data is None
    finally:
        enable_fault_injection(None)


def test_lost_irq_is_redelivered_by_the_watchdog():
    plan = FaultPlan.placed(ScheduledFault("blk.irq_lost", 0))
    enable_fault_injection(plan)
    try:
        sim, params, dev, done = make_dev(plan=plan)
        io = write_io(params.sector_size)
        dev.submit(io)
        sim.run()
        # the write landed on media; only the completion was delayed
        assert io.status is None and done == [io]
        service = params.media_latency \
            + len(io.payload) / params.media_bandwidth
        assert sim.now == pytest.approx(
            service + plan.irq_recovery_timeout)
        assert dev.tracer.get_count("blk.irq_recovered") == 1
    finally:
        enable_fault_injection(None)
