"""Unit tests for the HFI device, SDMA engines, TIDs and the fabric."""

import pytest

from repro.errors import DriverError, ReproError
from repro.hw import Fabric, HFIDevice, Packet, SdmaDescriptor, SdmaRequestGroup
from repro.params import default_params
from repro.sim import Simulator
from repro.units import KiB


def make_pair():
    sim = Simulator()
    params = default_params()
    fabric = Fabric(sim, params.nic)
    a = HFIDevice(sim, params.nic, node_id=0)
    b = HFIDevice(sim, params.nic, node_id=1)
    fabric.attach(a)
    fabric.attach(b)
    # a trivial IRQ dispatcher that runs the completion inline
    for dev in (a, b):
        dev.irq_dispatcher = lambda grp: (
            grp.on_complete(grp) if grp.on_complete else None)
    return sim, params, fabric, a, b


def eager_packet(nbytes, ctxt, src=0, dst=1, tag=None):
    return Packet(kind="eager", src_node=src, dst_node=dst,
                  dst_ctxt=ctxt.ctxt_id, nbytes=nbytes, tag=tag)


def test_pio_send_delivers_after_wire_latency():
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("test")
    got = []
    ctxt.on_packet = lambda pkt: got.append((sim.now, pkt.nbytes))
    sim.run(until=sim.process(a.pio_send(eager_packet(4 * KiB, ctxt))))
    sim.run()
    assert len(got) == 1
    t, nbytes = got[0]
    expected = (params.nic.pio_overhead + 4 * KiB / params.nic.pio_bandwidth
                + params.nic.wire_latency)
    assert t == pytest.approx(expected, rel=1e-9)
    assert nbytes == 4 * KiB


def test_loopback_skips_wire_latency():
    sim, params, fabric, a, b = make_pair()
    ctxt = a.alloc_context("self")
    got = []
    ctxt.on_packet = lambda pkt: got.append(sim.now)
    pkt = Packet(kind="eager", src_node=0, dst_node=0,
                 dst_ctxt=ctxt.ctxt_id, nbytes=KiB)
    sim.run(until=sim.process(a.pio_send(pkt)))
    assert got[0] == pytest.approx(
        params.nic.pio_overhead + KiB / params.nic.pio_bandwidth)


def test_sdma_completion_irq_and_delivery():
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("test")
    delivered, completed = [], []
    ctxt.on_packet = lambda pkt: delivered.append(sim.now)

    descs = [SdmaDescriptor(paddr=i * 4096, nbytes=4 * KiB) for i in range(16)]
    group = SdmaRequestGroup(
        descriptors=descs,
        packet=Packet(kind="eager", src_node=0, dst_node=1,
                      dst_ctxt=ctxt.ctxt_id, nbytes=64 * KiB),
        on_complete=lambda g: completed.append(sim.now))
    engine = a.pick_engine()
    sim.run(until=sim.process(engine.submit(group)))
    sim.run()
    assert len(delivered) == 1 and len(completed) == 1
    serialization = 16 * (params.nic.sdma_desc_overhead
                          + 4 * KiB / params.nic.link_bandwidth)
    assert completed[0] == pytest.approx(serialization, rel=1e-6)
    assert delivered[0] == pytest.approx(serialization + params.nic.wire_latency,
                                         rel=1e-6)


def test_sdma_descriptor_too_large_rejected():
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("test")
    group = SdmaRequestGroup(
        descriptors=[SdmaDescriptor(0, params.nic.sdma_max_request + 1)],
        packet=eager_packet(KiB, ctxt))
    proc = sim.process(a.pick_engine().submit(group))
    sim.run()
    assert isinstance(proc.exception, DriverError)


def test_empty_sdma_group_rejected():
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("test")
    group = SdmaRequestGroup(descriptors=[], packet=eager_packet(KiB, ctxt))
    proc = sim.process(a.pick_engine().submit(group))
    sim.run()
    assert isinstance(proc.exception, DriverError)


def test_ring_backpressure_blocks_submitter():
    """Submitting more descriptors than the ring holds must still complete
    (the engine drains and wakes the submitter)."""
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("test")
    n = params.nic.sdma_ring_size * 3
    group = SdmaRequestGroup(
        descriptors=[SdmaDescriptor(i * 4096, 4 * KiB) for i in range(n)],
        packet=eager_packet(n * 4 * KiB, ctxt))
    done = []
    group.on_complete = lambda g: done.append(sim.now)
    sim.run(until=sim.process(a.pick_engine().submit(group)))
    sim.run()
    assert len(done) == 1
    assert a.tracer.get_count("hfi.sdma_descs") == n


def test_engine_round_robin():
    sim, params, fabric, a, b = make_pair()
    picked = {a.pick_engine().index for _ in range(params.nic.sdma_engines)}
    assert picked == set(range(params.nic.sdma_engines))


def test_tid_program_and_unprogram():
    sim, params, fabric, a, b = make_pair()
    ctxt = a.alloc_context("rx")
    entries = a.program_tids(ctxt, [(0x1000, 8 * KiB), (0x10000, 4 * KiB)])
    assert len(entries) == 2
    assert a.tids_in_use == 2
    a.unprogram_tids([e.tid for e in entries])
    assert a.tids_in_use == 0


def test_tid_span_too_large_rejected():
    sim, params, fabric, a, b = make_pair()
    ctxt = a.alloc_context("rx")
    with pytest.raises(DriverError):
        a.program_tids(ctxt, [(0, params.nic.tid_max_span + 1)])


def test_rcv_array_exhaustion():
    sim, params, fabric, a, b = make_pair()
    ctxt = a.alloc_context("rx")
    spans = [(i * 4096, 4 * KiB) for i in range(params.nic.rcv_array_entries)]
    a.program_tids(ctxt, spans)
    with pytest.raises(DriverError):
        a.program_tids(ctxt, [(0, 4 * KiB)])


def test_unprogram_unknown_tid_rejected():
    sim, params, fabric, a, b = make_pair()
    with pytest.raises(DriverError):
        a.unprogram_tids([999])


def test_expected_packet_validates_tids():
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("rx")
    entries = b.program_tids(ctxt, [(0x1000, 8 * KiB)])
    got = []
    ctxt.on_packet = lambda pkt: got.append(pkt)
    pkt = Packet(kind="expected", src_node=0, dst_node=1,
                 dst_ctxt=ctxt.ctxt_id, nbytes=8 * KiB,
                 tids=(entries[0].tid,))
    b.receive(pkt)
    assert got and got[0].tids == (entries[0].tid,)
    bad = Packet(kind="expected", src_node=0, dst_node=1,
                 dst_ctxt=ctxt.ctxt_id, nbytes=KiB, tids=(4242,))
    with pytest.raises(DriverError):
        b.receive(bad)


def test_free_context_reclaims_tids():
    sim, params, fabric, a, b = make_pair()
    ctxt = a.alloc_context("rx")
    a.program_tids(ctxt, [(0x1000, 4 * KiB)])
    a.free_context(ctxt)
    assert a.tids_in_use == 0


def test_packets_without_handler_queue_up():
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("rx")
    b.receive(eager_packet(KiB, ctxt))
    assert len(ctxt.eager_backlog) == 1


def test_backlog_drains_in_order_when_handler_installed():
    """Early arrivals must reach the handler the moment it appears,
    not sit stranded in the backlog forever."""
    sim, params, fabric, a, b = make_pair()
    ctxt = b.alloc_context("rx")
    b.receive(eager_packet(KiB, ctxt))
    b.receive(eager_packet(2 * KiB, ctxt))
    got = []
    ctxt.on_packet = lambda pkt: got.append(pkt.nbytes)
    assert got == [KiB, 2 * KiB]
    assert not ctxt.eager_backlog
    b.receive(eager_packet(4 * KiB, ctxt))
    assert got == [KiB, 2 * KiB, 4 * KiB]


def test_free_context_with_inflight_sdma_group_raises():
    """Freeing a context while an SDMA group targeting it still sits in
    an engine ring must fail loudly instead of stranding the packets."""
    sim, params, fabric, a, b = make_pair()
    ctxt = a.alloc_context("rx")
    group = SdmaRequestGroup(
        descriptors=[SdmaDescriptor(0, KiB)],
        packet=Packet(kind="eager", src_node=1, dst_node=0,
                      dst_ctxt=ctxt.ctxt_id, nbytes=KiB))
    a.engines[0]._ring.append((group.descriptors[0], group, True, None))
    with pytest.raises(DriverError) as excinfo:
        a.free_context(ctxt)
    assert "in flight" in str(excinfo.value)
    assert a.tracer.get_count("hfi.free_ctxt_inflight") == 1
    a.engines[0]._ring.clear()
    a.free_context(ctxt)  # quiesced: now succeeds


def test_fabric_rejects_unknown_node_and_double_attach():
    sim, params, fabric, a, b = make_pair()
    with pytest.raises(ReproError):
        fabric.transmit(Packet(kind="eager", src_node=0, dst_node=99,
                               dst_ctxt=0, nbytes=1))
    with pytest.raises(ReproError):
        fabric.attach(a)


def test_irq_without_dispatcher_is_an_error():
    sim = Simulator()
    params = default_params()
    dev = HFIDevice(sim, params.nic, node_id=0)
    group = SdmaRequestGroup(
        descriptors=[SdmaDescriptor(0, KiB)],
        packet=Packet(kind="eager", src_node=0, dst_node=0,
                      dst_ctxt=0, nbytes=KiB))
    with pytest.raises(ReproError):
        dev.raise_irq(group)
