"""Unit tests for the frame allocator and the shared kernel heap."""

import numpy as np
import pytest

from repro.errors import OutOfMemory, ReproError
from repro.hw import Extent, FrameAllocator, SharedHeap


# --- FrameAllocator ---------------------------------------------------------

def test_contiguous_alloc_returns_single_run():
    fa = FrameAllocator(1024)
    ext = fa.alloc_contiguous(100)
    assert ext.count == 100
    assert fa.free_frames == 924


def test_contiguous_alloc_respects_alignment():
    fa = FrameAllocator(4096)
    fa.alloc_contiguous(3)  # misalign the free list head
    ext = fa.alloc_contiguous(512, align=512)
    assert ext.start % 512 == 0


def test_contiguous_alloc_fails_when_fragmented():
    fa = FrameAllocator(100)
    keep = fa.alloc_contiguous(50)
    hole_makers = [fa.alloc_contiguous(1) for _ in range(50)]
    fa.free([keep])
    # largest run is 50 -> a 60-frame contiguous alloc must fail
    with pytest.raises(OutOfMemory):
        fa.alloc_contiguous(60)
    fa.free(hole_makers)
    assert fa.alloc_contiguous(100).count == 100


def test_alloc_splits_across_free_intervals():
    fa = FrameAllocator(100)
    a = fa.alloc_contiguous(40)       # [0,40)
    b = fa.alloc_contiguous(40)       # [40,80)
    fa.free([a])                      # free [0,40), keep [80,100) free
    extents = fa.alloc(50)
    assert sum(e.count for e in extents) == 50
    assert len(extents) == 2
    fa.free([b])


def test_alloc_overcommit_rejected():
    fa = FrameAllocator(10)
    with pytest.raises(OutOfMemory):
        fa.alloc(11)


def test_double_free_detected():
    fa = FrameAllocator(100)
    ext = fa.alloc_contiguous(10)
    fa.free([ext])
    with pytest.raises(ReproError):
        fa.free([ext])


def test_free_merges_intervals():
    fa = FrameAllocator(100)
    a = fa.alloc_contiguous(30)
    b = fa.alloc_contiguous(30)
    c = fa.alloc_contiguous(30)
    fa.free([a])
    fa.free([c])
    fa.free([b])  # middle free must merge everything back
    assert fa.free_intervals() == [(0, 100)]


def test_scattered_alloc_is_fragmented():
    fa = FrameAllocator(64 * 1024)
    rng = np.random.default_rng(1)
    extents = fa.alloc_scattered(1024, rng, contig_prob=0.02)
    assert sum(e.count for e in extents) == 1024
    mean_run = 1024 / len(extents)
    assert mean_run < 1.5  # almost every frame is its own extent


def test_scattered_alloc_with_high_contig_prob_coalesces():
    fa = FrameAllocator(64 * 1024)
    rng = np.random.default_rng(2)
    extents = fa.alloc_scattered(1024, rng, contig_prob=0.95)
    assert sum(e.count for e in extents) == 1024
    assert 1024 / len(extents) > 5  # long runs dominate


def test_scattered_alloc_overcommit_rejected():
    fa = FrameAllocator(10)
    with pytest.raises(OutOfMemory):
        fa.alloc_scattered(11, np.random.default_rng(0))


def test_extent_byte_range():
    assert Extent(2, 3).byte_range(4096) == (8192, 12288)


# --- SharedHeap ---------------------------------------------------------------

def test_kmalloc_roundtrip():
    heap = SharedHeap(4096, base=0x1000)
    addr = heap.kmalloc(64)
    assert heap.contains(addr)
    heap.write(addr, b"\xde\xad\xbe\xef")
    assert heap.read(addr, 4) == b"\xde\xad\xbe\xef"


def test_kmalloc_zeroes_memory():
    heap = SharedHeap(4096, base=0)
    a = heap.kmalloc(32)
    heap.write(a, b"\xff" * 32)
    heap.kfree(a)
    b = heap.kmalloc(32)
    assert b == a  # size-class reuse
    assert heap.read(b, 32) == bytes(32)


def test_kfree_unallocated_rejected():
    heap = SharedHeap(4096, base=0)
    with pytest.raises(ReproError):
        heap.kfree(0x10)


def test_heap_exhaustion():
    heap = SharedHeap(256, base=0)
    heap.kmalloc(128)
    with pytest.raises(OutOfMemory):
        heap.kmalloc(256)


def test_heap_out_of_bounds_access_rejected():
    heap = SharedHeap(64, base=0x100)
    with pytest.raises(ReproError):
        heap.read(0x100 + 60, 8)
    with pytest.raises(ReproError):
        heap.read(0x90, 4)


def test_heap_integer_access():
    heap = SharedHeap(4096, base=0)
    addr = heap.kmalloc(16)
    heap.write_u(addr + 8, 4, 0xCAFEBABE)
    assert heap.read_u(addr + 8, 4) == 0xCAFEBABE


def test_live_object_accounting():
    heap = SharedHeap(4096, base=0)
    a = heap.kmalloc(8)
    b = heap.kmalloc(8)
    assert heap.live_objects() == 2
    heap.kfree(a)
    heap.kfree(b)
    assert heap.live_objects() == 0
