"""Property-based tests of frame-allocator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OutOfMemory
from repro.hw import FrameAllocator


@st.composite
def alloc_free_script(draw):
    """A random interleaving of allocations and frees."""
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 64)),
            st.tuples(st.just("alloc_contig"), st.integers(1, 64)),
            st.tuples(st.just("free"), st.integers(0, 100)),
        ),
        min_size=1, max_size=60))


@given(script=alloc_free_script())
@settings(max_examples=100)
def test_no_frame_is_ever_double_allocated(script):
    fa = FrameAllocator(2048)
    live = []          # list of extent-lists
    owned = set()      # all currently allocated frame numbers

    for op, arg in script:
        if op == "alloc":
            try:
                extents = fa.alloc(arg)
            except OutOfMemory:
                continue
            live.append(extents)
        elif op == "alloc_contig":
            try:
                extents = [fa.alloc_contiguous(arg)]
            except OutOfMemory:
                continue
            live.append(extents)
        else:
            if not live:
                continue
            extents = live.pop(arg % len(live))
            fa.free(extents)
            for ext in extents:
                for f in range(ext.start, ext.end):
                    owned.discard(f)
            continue
        for ext in extents:
            for f in range(ext.start, ext.end):
                assert f not in owned, f"frame {f} double-allocated"
                owned.add(f)

    # conservation: allocated + free == total
    assert fa.allocated_frames == len(owned)
    assert fa.allocated_frames + fa.free_frames == fa.total_frames
    # free list is sorted, disjoint, non-adjacent
    ivals = fa.free_intervals()
    for (s1, e1), (s2, e2) in zip(ivals, ivals[1:]):
        assert e1 < s2


@given(
    n=st.integers(1, 512),
    contig_prob=st.floats(0.0, 0.99),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=60)
def test_scattered_alloc_conserves_frames(n, contig_prob, seed):
    fa = FrameAllocator(4096)
    rng = np.random.default_rng(seed)
    extents = fa.alloc_scattered(n, rng, contig_prob=contig_prob)
    assert sum(e.count for e in extents) == n
    assert fa.allocated_frames == n
    # no overlap between extents
    seen = set()
    for ext in extents:
        for f in range(ext.start, ext.end):
            assert f not in seen
            seen.add(f)
    fa.free(extents)
    assert fa.allocated_frames == 0
    assert fa.free_intervals() == [(0, 4096)]
