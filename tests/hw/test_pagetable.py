"""Unit and property tests for page tables and physical-span iteration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFault, ReproError
from repro.hw import Extent, PageTable
from repro.units import LARGE_PAGE_SIZE, PAGE_SIZE


def test_translate_basic():
    pt = PageTable("test")
    pt.map_page(0x10000, 0x40000)
    assert pt.translate(0x10000) == 0x40000
    assert pt.translate(0x10FFF) == 0x40FFF


def test_unmapped_access_faults():
    pt = PageTable("test")
    pt.map_page(0x10000, 0x40000)
    with pytest.raises(PageFault):
        pt.translate(0x11000)
    with pytest.raises(PageFault):
        pt.translate(0xFFFF)


def test_large_page_mapping():
    pt = PageTable("test")
    pt.map_page(2 * LARGE_PAGE_SIZE, 4 * LARGE_PAGE_SIZE, LARGE_PAGE_SIZE)
    assert pt.translate(2 * LARGE_PAGE_SIZE + 12345) == 4 * LARGE_PAGE_SIZE + 12345
    assert len(pt) == 1  # one entry, not 512


def test_overlap_rejected():
    pt = PageTable("test")
    pt.map_page(0x10000, 0x40000)
    with pytest.raises(ReproError):
        pt.map_page(0x10000, 0x50000)
    pt2 = PageTable("test")
    pt2.map_page(0, 0, LARGE_PAGE_SIZE)
    with pytest.raises(ReproError):
        pt2.map_page(PAGE_SIZE, 0x99000)  # inside the large page


def test_unaligned_mapping_rejected():
    pt = PageTable("test")
    with pytest.raises(ReproError):
        pt.map_page(0x10001, 0x40000)
    with pytest.raises(ReproError):
        pt.map_page(PAGE_SIZE, LARGE_PAGE_SIZE // 2, LARGE_PAGE_SIZE)


def test_phys_spans_merges_contiguous_pages():
    pt = PageTable("test")
    # three virtually and physically consecutive 4K pages
    for i in range(3):
        pt.map_page(0x10000 + i * PAGE_SIZE, 0x40000 + i * PAGE_SIZE)
    spans = pt.phys_spans(0x10000, 3 * PAGE_SIZE)
    assert spans == [(0x40000, 3 * PAGE_SIZE)]


def test_phys_spans_splits_discontiguous_pages():
    pt = PageTable("test")
    pt.map_page(0x10000, 0x40000)
    pt.map_page(0x11000, 0x90000)   # physically elsewhere
    spans = pt.phys_spans(0x10000, 2 * PAGE_SIZE)
    assert spans == [(0x40000, PAGE_SIZE), (0x90000, PAGE_SIZE)]


def test_phys_spans_partial_range():
    pt = PageTable("test")
    pt.map_page(0, 2 * LARGE_PAGE_SIZE, LARGE_PAGE_SIZE)
    spans = pt.phys_spans(0x800, 0x1000)
    assert spans == [(2 * LARGE_PAGE_SIZE + 0x800, 0x1000)]


def test_pages_view_expands_large_pages():
    """get_user_pages() sees base pages even inside a 2MB mapping."""
    pt = PageTable("test")
    pt.map_page(0, 0x200000, LARGE_PAGE_SIZE)
    pages = pt.pages(0, 16 * PAGE_SIZE)
    assert pages == [0x200000 + i * PAGE_SIZE for i in range(16)]


def test_map_extents_with_large_pages():
    pt = PageTable("test")
    frames = LARGE_PAGE_SIZE // PAGE_SIZE
    # a contiguous, aligned physical run -> 1 large page + ragged 4K tail
    end = pt.map_extents(0, [Extent(frames, frames + 3)],
                         use_large_pages=True)
    assert end == LARGE_PAGE_SIZE + 3 * PAGE_SIZE
    assert len(pt) == 1 + 3
    assert pt.phys_spans(0, end) == [(LARGE_PAGE_SIZE, end)]


def test_map_extents_without_large_pages():
    pt = PageTable("test")
    pt.map_extents(0, [Extent(512, 512)], use_large_pages=False)
    assert len(pt) == 512


def test_unmap_returns_physical_extents():
    pt = PageTable("test")
    pt.map_extents(0x10000, [Extent(7, 2)], pinned=True)
    released = pt.unmap_range(0x10000, 2 * PAGE_SIZE)
    assert released == [Extent(7, 1), Extent(8, 1)]
    with pytest.raises(PageFault):
        pt.translate(0x10000)


def test_partial_unmap_of_large_page_rejected():
    pt = PageTable("test")
    pt.map_page(0, 0, LARGE_PAGE_SIZE)
    with pytest.raises(ReproError):
        pt.unmap_range(0, PAGE_SIZE)


def test_pinned_flag():
    pt = PageTable("test")
    pt.map_page(0, 0, PAGE_SIZE, pinned=True)
    pt.map_page(PAGE_SIZE, 0x10000, PAGE_SIZE, pinned=False)
    assert pt.is_pinned(0, PAGE_SIZE)
    assert not pt.is_pinned(0, 2 * PAGE_SIZE)


@given(
    n_pages=st.integers(1, 64),
    seed=st.integers(0, 1000),
    offset=st.integers(0, PAGE_SIZE - 1),
)
@settings(max_examples=60)
def test_phys_spans_cover_exactly_the_requested_bytes(n_pages, seed, offset):
    """Span lists always partition the byte range, whatever the layout."""
    import numpy as np
    rng = np.random.default_rng(seed)
    pt = PageTable("prop")
    # random physical placement: shuffled frames, some adjacent by chance
    frames = rng.permutation(n_pages * 4)[:n_pages]
    for i, f in enumerate(sorted(frames[: n_pages])):
        pt.map_page(i * PAGE_SIZE, int(f) * PAGE_SIZE)
    length = n_pages * PAGE_SIZE - offset
    spans = pt.phys_spans(offset, length)
    assert sum(nbytes for _, nbytes in spans) == length
    # spans are maximal: consecutive spans are never physically adjacent
    for (p1, n1), (p2, _) in zip(spans, spans[1:]):
        assert p1 + n1 != p2
