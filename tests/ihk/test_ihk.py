"""Tests for IHK: partitioning, LWK boot/shutdown, IKC delegation."""

import pytest

from repro.config import OSConfig
from repro.errors import ReproError
from repro.experiments import build_machine
from repro.hw import Node
from repro.ihk.manager import IhkManager
from repro.ihk.partition import release_partition, reserve_partition
from repro.linux.kernel import LinuxKernel
from repro.params import default_params
from repro.sim import RngFactory, Simulator
from repro.units import LARGE_PAGE_SIZE, PAGE_SIZE


def make_node():
    sim = Simulator()
    params = default_params()
    node = Node(sim, params, 0)
    linux = LinuxKernel(sim, params, node, RngFactory(1))
    return sim, params, node, linux


def test_partition_offlines_cores():
    sim, params, node, linux = make_node()
    part = reserve_partition(node, 64, 1024)
    assert len(node.cpus.owned_by("linux")) == params.node.total_cores - 64
    assert all(c.offlined for c in part.cores)
    # cores taken from the tail: the first cores stay with Linux
    assert node.cpus[0].owner == "linux"
    assert node.cpus[params.node.total_cores - 1].owner == "mckernel"


def test_partition_memory_is_contiguous_and_aligned():
    sim, params, node, linux = make_node()
    part = reserve_partition(node, 4, 4096)
    assert part.mem_extent.count == 4096
    assert part.mem_extent.start % (LARGE_PAGE_SIZE // PAGE_SIZE) == 0
    assert part.lwk_allocator.base_frame == part.mem_extent.start


def test_release_returns_resources():
    sim, params, node, linux = make_node()
    linux_cores = len(node.cpus.owned_by("linux"))
    free = node.mcdram.free_frames
    part = reserve_partition(node, 8, 2048)
    release_partition(part)
    assert len(node.cpus.owned_by("linux")) == linux_cores
    assert node.mcdram.free_frames == free
    with pytest.raises(ReproError):
        release_partition(part)


def test_release_with_live_lwk_allocations_rejected():
    sim, params, node, linux = make_node()
    part = reserve_partition(node, 4, 1024)
    part.lwk_allocator.alloc_contiguous(10)
    with pytest.raises(ReproError, match="still"):
        release_partition(part)


def test_bad_partition_requests_rejected():
    sim, params, node, linux = make_node()
    with pytest.raises(ReproError):
        reserve_partition(node, 0, 100)
    with pytest.raises(ReproError):
        reserve_partition(node, 1, 0)
    with pytest.raises(ValueError):
        reserve_partition(node, 10_000, 100)


def test_manager_boots_and_destroys_lwk():
    sim, params, node, linux = make_node()
    ihk = IhkManager(sim, params, node, linux)
    mck = ihk.boot_mckernel(n_cores=16, mem_frames=4096)
    assert node.mckernel is mck
    assert len(mck.partition.cores) == 16
    with pytest.raises(ReproError):
        ihk.boot_mckernel()        # already booted
    ihk.destroy_mckernel()
    assert node.mckernel is None
    with pytest.raises(ReproError):
        ihk.destroy_mckernel()


def test_unified_boot_validates_layout():
    sim, params, node, linux = make_node()
    ihk = IhkManager(sim, params, node, linux)
    mck = ihk.boot_mckernel(n_cores=4, mem_frames=1024,
                            unified_address_space=True)
    from repro.core.address_space import validate_unification
    validate_unification(linux.aspace, mck.aspace)


def test_non_unified_boot_keeps_original_layout():
    sim, params, node, linux = make_node()
    ihk = IhkManager(sim, params, node, linux)
    mck = ihk.boot_mckernel(n_cores=4, mem_frames=1024,
                            unified_address_space=False)
    from repro.core.address_space import LINUX_DIRECT_MAP_BASE
    assert mck.aspace.regions["direct_map"].start != LINUX_DIRECT_MAP_BASE


def test_ikc_offload_round_trip_cost():
    """An uncontended offloaded syscall costs at least the IKC round trip
    more than the native call."""
    machine = build_machine(1, OSConfig.MCKERNEL)
    task = machine.spawn_rank(0, 0)

    def body():
        t0 = machine.sim.now
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        return machine.sim.now - t0

    proc = machine.sim.process(body())
    machine.sim.run(until=proc)
    params = machine.params
    native_floor = params.syscall.open_cost + params.syscall.linux_entry
    assert proc.value >= native_floor + params.ikc.round_trip


def test_ikc_contention_queues_on_os_cpus():
    """More simultaneous offloads than OS CPUs -> FIFO queueing delay."""
    machine = build_machine(1, OSConfig.MCKERNEL)
    n_ranks = 16
    finish = []

    def body(task):
        yield from task.syscall("open", "/dev/hfi1_0")
        finish.append(machine.sim.now)

    for i in range(n_ranks):
        machine.sim.process(body(machine.spawn_rank(0, i)))
    machine.sim.run()
    assert len(finish) == n_ranks
    spread = max(finish) - min(finish)
    # 16 jobs over 4 CPUs: the last waits ~3 service times
    service = machine.params.syscall.open_cost
    assert spread > 2 * service


def test_ikc_propagates_errors():
    machine = build_machine(1, OSConfig.MCKERNEL)
    task = machine.spawn_rank(0, 0)

    def body():
        yield from task.syscall("ioctl", 99, 0, None)  # bad fd via offload

    proc = machine.sim.process(body())
    machine.sim.run()
    from repro.errors import BadSyscall
    assert isinstance(proc.exception, BadSyscall)
