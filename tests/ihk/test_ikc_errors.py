"""IKC error propagation: a Linux-side exception must fail the caller's
completion event (``done.fail``) and leave the channel healthy."""

from repro.config import OSConfig
from repro.errors import ReproError
from repro.experiments import build_machine


def test_linux_exception_fails_the_ikc_completion_event():
    """The error raised inside the Linux syscall handler surfaces in the
    LWK caller's process, through the failed ``done`` event."""
    machine = build_machine(1, OSConfig.MCKERNEL)
    mck = machine.nodes[0].mckernel
    task = machine.spawn_rank(0, 0)
    proxy_task = mck.proxy_for(task).linux_task

    def bad():
        yield from mck.ikc.call(proxy_task, "ioctl", (999, 0, {}))

    proc = machine.sim.process(bad())
    machine.sim.run()
    assert isinstance(proc.exception, ReproError)
    assert mck.ikc.inflight == 0


def test_channel_serves_calls_after_a_failure():
    machine = build_machine(1, OSConfig.MCKERNEL)
    mck = machine.nodes[0].mckernel
    task = machine.spawn_rank(0, 0)
    proxy_task = mck.proxy_for(task).linux_task

    def bad():
        yield from mck.ikc.call(proxy_task, "ioctl", (999, 0, {}))

    def good():
        fd = yield from mck.ikc.call(proxy_task, "open", ("/dev/hfi1_0",))
        return fd

    bad_proc = machine.sim.process(bad())
    machine.sim.run()
    assert bad_proc.exception is not None
    good_proc = machine.sim.process(good())
    machine.sim.run()
    assert good_proc.ok
    assert mck.ikc.inflight == 0


def test_concurrent_failure_does_not_wedge_other_callers():
    """A failing call and a healthy call in flight together: each gets
    its own completion, and accounting returns to zero."""
    machine = build_machine(1, OSConfig.MCKERNEL)
    mck = machine.nodes[0].mckernel
    task = machine.spawn_rank(0, 0)
    proxy_task = mck.proxy_for(task).linux_task

    def bad():
        yield from mck.ikc.call(proxy_task, "ioctl", (999, 0, {}))

    def good():
        ret = yield from mck.ikc.call(proxy_task, "nanosleep", (1e-6,))
        return ret

    bad_proc = machine.sim.process(bad())
    good_proc = machine.sim.process(good())
    machine.sim.run()
    assert bad_proc.exception is not None
    assert good_proc.ok
    assert mck.ikc.inflight == 0
