"""Failure injection across the stack: the model must fail loudly and in
the right place, mirroring real-system failure modes."""

import pytest

from repro.config import OSConfig
from repro.errors import DriverError, PageFault
from repro.experiments import build_machine
from repro.linux.hfi1 import ioctls as ioc
from repro.linux.hfi1.debuginfo import (SDMA_STATE_S80_HW_FREEZE,
                                        SDMA_STATE_S99_RUNNING)
from repro.sim import Event
from repro.units import KiB, MiB


def spawn_and_run(machine, body_fn, rank=0):
    task = machine.spawn_rank(0, rank)
    proc = machine.sim.process(body_fn(task))
    machine.sim.run()
    return proc


def test_pico_degrades_gracefully_on_frozen_sdma_engine():
    """The fast path checks engine state through the DWARF view before
    submitting; a frozen engine (set by 'Linux') no longer kills the
    caller — the fast path declines, the dispatcher re-issues the call
    over the offload path and the Linux driver recovers the engine."""
    machine = build_machine(2, OSConfig.MCKERNEL_HFI)
    driver = machine.nodes[0].driver
    # a sink context on node 1: unlike the pre-recovery version of this
    # test, the transfer now actually completes and must land somewhere
    machine.nodes[1].node.hfi.alloc_context("sink")
    for state in driver.engine_states:
        state.set("current_state", SDMA_STATE_S80_HW_FREEZE)
        state.set("go_s99_running", 0)

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 1 * MiB)
        done = Event(machine.sim)
        meta = {"dst_node": 1, "dst_ctxt": 0, "kind": "eager",
                "completion": done}
        yield from task.syscall("writev", fd, [meta, (buf, 1 * MiB)])

    proc = spawn_and_run(machine, body)
    assert proc.ok
    assert machine.tracer.get_count("pico.engine_not_running") >= 1
    assert machine.tracer.get_count("pico.fallbacks") >= 1
    assert machine.tracer.get_count("hfi.sdma_recoveries") >= 1
    # the engine the slow path used was brought back to S99 running
    assert any(state.get("current_state") == SDMA_STATE_S99_RUNNING
               and state.get("go_s99_running") == 1
               for state in driver.engine_states)


def test_pico_writev_requires_pinned_memory():
    machine = build_machine(2, OSConfig.MCKERNEL_HFI)
    mck = machine.nodes[0].mckernel

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 64 * KiB)
        # sabotage: replace the mapping with an unpinned one
        released = task.pagetable.unmap_range(buf, 64 * KiB)
        task.pagetable.map_extents(buf, released, pinned=False)
        meta = {"dst_node": 1, "dst_ctxt": 0, "kind": "expected",
                "completion": Event(machine.sim)}
        yield from task.syscall("writev", fd, [meta, (buf, 64 * KiB)])

    proc = spawn_and_run(machine, body)
    assert isinstance(proc.exception, DriverError)
    assert "unpinned" in str(proc.exception)


def test_offloaded_errors_cross_ikc_cleanly():
    """A driver error raised in Linux propagates through the IKC response
    into the McKernel caller without wedging the channel."""
    machine = build_machine(1, OSConfig.MCKERNEL)

    def bad(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        yield from task.syscall("ioctl", fd, ioc.HFI1_IOCTL_TID_FREE,
                                {"tids": [424242]})

    proc = spawn_and_run(machine, bad)
    assert isinstance(proc.exception, DriverError)

    # channel still serves subsequent calls
    def good(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        return fd

    machine2_proc = machine.sim.process(good(machine.spawn_rank(0, 1)))
    machine.sim.run()
    assert machine2_proc.ok


def test_rcv_array_exhaustion_surfaces_to_caller():
    machine = build_machine(1, OSConfig.LINUX)
    hfi = machine.nodes[0].node.hfi
    # shrink the RcvArray by pre-programming almost all entries
    ctxt = hfi.alloc_context("hog")
    hfi.program_tids(ctxt, [(i * 4096, 4096) for i in
                            range(machine.params.nic.rcv_array_entries - 2)])

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 64 * KiB)
        yield from task.syscall("ioctl", fd, ioc.HFI1_IOCTL_TID_UPDATE,
                                {"vaddr": buf, "length": 64 * KiB})

    proc = spawn_and_run(machine, body)
    assert isinstance(proc.exception, DriverError)
    assert "RcvArray exhausted" in str(proc.exception)


def test_progress_worker_error_handler():
    from repro.psm.progress import ProgressWorker
    from repro.sim import Simulator
    sim = Simulator()
    worker = ProgressWorker(sim, "w")
    errors = []
    worker.on_error(errors.append)

    def failing_job():
        yield sim.timeout(1.0)
        raise DriverError("injected")

    def ok_job():
        yield sim.timeout(1.0)

    worker.submit(failing_job())
    worker.submit(ok_job())
    sim.run()
    assert len(errors) == 1 and "injected" in str(errors[0])
    assert worker.failed == 1 and worker.completed == 1


def test_non_unified_dereference_page_faults():
    """Without the PicoDriver's unified layout, touching a Linux driver
    pointer from McKernel faults — the section 3.1 motivation."""
    machine = build_machine(1, OSConfig.MCKERNEL)   # original layout
    mck = machine.nodes[0].mckernel
    driver = machine.nodes[0].driver
    with pytest.raises(PageFault):
        mck.aspace.check_access(driver.devdata.addr, "hfi1_devdata")


def test_kheap_exhaustion_is_loud():
    from repro.errors import OutOfMemory
    machine = build_machine(1, OSConfig.LINUX)
    heap = machine.nodes[0].node.kheap
    with pytest.raises(OutOfMemory):
        while True:
            heap.kmalloc(1 << 16)
