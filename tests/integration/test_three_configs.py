"""End-to-end integration: PSM ping-pong across the three OS
configurations, verifying both behaviour (data delivery, protocol
invariants) and the mechanisms behind the paper's results."""

import pytest

from repro.config import ALL_CONFIGS, OSConfig
from repro.errors import DriverError
from repro.experiments import build_machine
from repro.psm import Endpoint, TagMatcher
from repro.units import KiB, MiB


def make_pair(cfg, params=None):
    machine = build_machine(2, cfg, params=params)
    sim = machine.sim
    t0 = machine.spawn_rank(0, 0, 0)
    t1 = machine.spawn_rank(1, 0, 1)
    ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                   tracer=machine.tracer)
    ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                   tracer=machine.tracer)
    return machine, (t0, ep0), (t1, ep1)


def transfer_once(machine, sender, receiver, nbytes, payload="PAYLOAD"):
    """One open+mmap+send / open+mmap+recv exchange; returns elapsed."""
    sim = machine.sim
    (t0, ep0), (t1, ep1) = sender, receiver
    done = {}

    def tx():
        yield from ep0.open()
        buf = yield from t0.syscall("mmap", max(nbytes, 4 * KiB))
        while ep1.addr is None:
            yield sim.timeout(1e-6)
        t_start = sim.now
        yield from ep0.mq_send(ep1.addr, "tag", buf, nbytes, payload)
        done["send"] = sim.now - t_start

    def rx():
        yield from ep1.open()
        buf = yield from t1.syscall("mmap", max(nbytes, 4 * KiB))
        req = ep1.mq_irecv(TagMatcher(tag="tag"), (buf, max(nbytes, 4 * KiB)))
        got = yield req.event
        done["recv"] = (got.nbytes, got.payload, sim.now)

    p_rx = sim.process(rx())
    p_tx = sim.process(tx())
    sim.run(until=p_rx)
    sim.run(until=p_tx)
    return done


@pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.value)
@pytest.mark.parametrize("nbytes", [1 * KiB, 128 * KiB, 2 * MiB],
                         ids=["pio", "eager-sdma", "expected"])
def test_payload_delivered_intact(cfg, nbytes):
    machine, s, r = make_pair(cfg)
    done = transfer_once(machine, s, r, nbytes, payload=("blob", nbytes))
    assert done["recv"][0] == nbytes
    assert done["recv"][1] == ("blob", nbytes)


@pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.value)
def test_tids_are_reclaimed_after_rendezvous(cfg):
    machine, s, r = make_pair(cfg)
    transfer_once(machine, s, r, 2 * MiB)
    machine.sim.run()
    assert machine.nodes[1].node.hfi.tids_in_use == 0


def test_linux_uses_page_sized_descriptors():
    machine, s, r = make_pair(OSConfig.LINUX)
    transfer_once(machine, s, r, 2 * MiB)
    assert machine.tracer.get_mean("hfi.sdma_desc_bytes") == 4096


def test_mckernel_offload_uses_page_sized_descriptors():
    """Offloading does not change driver behaviour — same 4KB requests
    even over McKernel's contiguous memory."""
    machine, s, r = make_pair(OSConfig.MCKERNEL)
    transfer_once(machine, s, r, 2 * MiB)
    assert machine.tracer.get_mean("hfi.sdma_desc_bytes") == 4096


def test_pico_uses_10kb_descriptors():
    """Section 3.4: the PicoDriver consistently utilizes the maximum SDMA
    request size when memory is contiguous."""
    machine, s, r = make_pair(OSConfig.MCKERNEL_HFI)
    transfer_once(machine, s, r, 2 * MiB)
    mean = machine.tracer.get_mean("hfi.sdma_desc_bytes")
    assert mean > 2 * 4096


def test_pico_tid_entries_collapse_with_large_pages():
    machine, s, r = make_pair(OSConfig.MCKERNEL_HFI)
    transfer_once(machine, s, r, 2 * MiB)
    # 2MB contiguous window -> handfuls of TIDs, not one per 4KB page
    assert machine.tracer.get_mean("psm.tids_per_window") <= 2
    machine2, s2, r2 = make_pair(OSConfig.LINUX)
    transfer_once(machine2, s2, r2, 2 * MiB)
    assert machine2.tracer.get_mean("psm.tids_per_window") == 64


def test_pico_fast_path_claims_only_three_ioctls():
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    pico = machine.nodes[0].pico
    from repro.linux.hfi1 import ALL_IOCTLS, TID_IOCTLS
    claimed = [c for c in ALL_IOCTLS
               if pico.claims("ioctl", (3, c, None)).handled]
    assert set(claimed) == set(TID_IOCTLS)
    assert len(claimed) == 3 and len(ALL_IOCTLS) == 13
    assert pico.claims("writev", (3, [])).handled
    assert not pico.claims("open", ("/dev/hfi1_0",)).handled
    assert not pico.claims("mmap", (3, 100)).handled


def test_pico_completion_uses_foreign_free():
    """SDMA completions run on Linux CPUs and free McKernel metadata via
    the foreign-CPU kfree path (section 3.3)."""
    machine, s, r = make_pair(OSConfig.MCKERNEL_HFI)
    transfer_once(machine, s, r, 2 * MiB)
    machine.sim.run()
    mck = machine.nodes[0].mckernel
    assert mck.alloc.foreign_frees >= 8       # one per window writev
    assert mck.alloc.live_objects() == 0      # no leaks


def test_pico_syscalls_do_not_offload():
    machine, s, r = make_pair(OSConfig.MCKERNEL_HFI)
    transfer_once(machine, s, r, 2 * MiB)
    mck_tracer = machine.tracer
    assert mck_tracer.get_count("pico.fast.writev") >= 8
    assert mck_tracer.get_count("pico.fast.ioctl") >= 8
    # only slow-path calls offloaded (open/mmap/ASSIGN_CTXT)
    assert mck_tracer.get_count("pico.offload.writev") == 0


def test_mckernel_offloads_everything():
    machine, s, r = make_pair(OSConfig.MCKERNEL)
    transfer_once(machine, s, r, 2 * MiB)
    assert machine.tracer.get_count("pico.fast.writev") == 0
    assert machine.tracer.get_count("offload.calls") > 10


def test_pico_refuses_to_attach_without_unified_address_space():
    """Registering the PicoDriver on an original-layout LWK must fail the
    section-3.1 prerequisite check."""
    from repro.core.hfi_pico import HFIPicoDriver
    from repro.errors import LayoutError
    machine = build_machine(1, OSConfig.MCKERNEL)   # original layout
    mck = machine.nodes[0].mckernel
    pico = HFIPicoDriver(machine.nodes[0].driver)
    with pytest.raises(LayoutError):
        mck.register_picodriver(pico)


def test_pico_refuses_stale_driver_version():
    """A PicoDriver whose layouts were extracted from a different driver
    release must refuse to attach (section 3.2)."""
    from repro.core.hfi_pico import HFIPicoDriver
    from repro.linux.hfi1.debuginfo import build_module
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    mck = machine.nodes[0].mckernel
    mck.pico.unregister("/dev/hfi1_0")
    pico = HFIPicoDriver(machine.nodes[0].driver)
    pico.module = build_module("1.1.1")     # stale extraction source
    with pytest.raises(DriverError, match="re-run dwarf-extract-struct"):
        mck.register_picodriver(pico)


def test_bandwidth_ordering_matches_figure4():
    """The headline shape: pico > linux > mckernel for large messages."""
    times = {}
    for cfg in ALL_CONFIGS:
        machine, s, r = make_pair(cfg)
        done = transfer_once(machine, s, r, 4 * MiB)
        times[cfg] = done["send"]
    assert times[OSConfig.MCKERNEL_HFI] < times[OSConfig.LINUX]
    assert times[OSConfig.LINUX] < times[OSConfig.MCKERNEL]
    # ratios in the paper's ballpark
    assert 0.80 < times[OSConfig.LINUX] / times[OSConfig.MCKERNEL] < 0.97
    assert 1.05 < times[OSConfig.LINUX] / times[OSConfig.MCKERNEL_HFI] < 1.30


def test_small_messages_identical_across_configs():
    """Below the PIO threshold everything is user-space driven."""
    times = {}
    for cfg in ALL_CONFIGS:
        machine, s, r = make_pair(cfg)
        done = transfer_once(machine, s, r, 8 * KiB)
        times[cfg] = done["send"]
    assert times[OSConfig.LINUX] == pytest.approx(
        times[OSConfig.MCKERNEL], rel=1e-9)
    assert times[OSConfig.LINUX] == pytest.approx(
        times[OSConfig.MCKERNEL_HFI], rel=1e-9)


def test_sdma_lock_serializes_both_kernels():
    machine, s, r = make_pair(OSConfig.MCKERNEL_HFI)
    transfer_once(machine, s, r, 2 * MiB)
    lock = machine.nodes[0].driver.sdma_lock
    assert not lock.locked
