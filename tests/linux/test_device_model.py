"""Device model / sysfs tests, including cross-kernel (offloaded) reads —
the administrative surface McKernel reaches only through Linux."""

import pytest

from repro.config import OSConfig
from repro.errors import BadSyscall, ReproError
from repro.experiments import build_machine
from repro.linux.device_model import Device, DeviceModel


def test_device_attrs_and_paths():
    dev = Device("hfi1_0", "infiniband")
    dev.add_attr("hw_rev", 16)
    dev.add_attr("dynamic", lambda: "live-value")
    assert dev.sysfs_path == "/sys/class/infiniband/hfi1_0"
    assert dev.read_attr("hw_rev") == "16\n"
    assert dev.read_attr("dynamic") == "live-value\n"
    assert dev.attr_names() == ["dynamic", "hw_rev"]


def test_duplicate_attr_rejected():
    dev = Device("d", "c")
    dev.add_attr("x", 1)
    with pytest.raises(ReproError):
        dev.add_attr("x", 2)


def test_missing_attr_is_einval():
    dev = Device("d", "c")
    with pytest.raises(BadSyscall):
        dev.read_attr("nope")


def test_model_registry_and_lookup():
    model = DeviceModel()
    dev = model.register(Device("hfi1_0", "infiniband"))
    dev.add_attr("serial", "0xabc")
    assert model.classes() == ["infiniband"]
    found = model.lookup_attr("/sys/class/infiniband/hfi1_0/serial")
    assert found == (dev, "serial")
    assert model.lookup_attr("/sys/class/infiniband/none/serial") is None
    assert model.lookup_attr("/etc/hosts") is None
    with pytest.raises(ReproError):
        model.register(Device("hfi1_0", "infiniband"))
    model.unregister(dev)
    assert model.lookup_attr("/sys/class/infiniband/hfi1_0/serial") is None


def read_sysfs(machine, path):
    task = machine.spawn_rank(0, 0)

    def body():
        fd = yield from task.syscall("open", path)
        content = yield from task.syscall("read", fd, 4096)
        yield from task.syscall("close", fd)
        return content

    proc = machine.sim.process(body())
    machine.sim.run(until=proc)
    return proc.value


def test_hfi1_driver_populates_sysfs():
    machine = build_machine(1, OSConfig.LINUX)
    content = read_sysfs(machine,
                         "/sys/class/infiniband/hfi1_0/boardversion")
    assert "ChipABI" in content
    nctxts = read_sysfs(machine, "/sys/class/infiniband/hfi1_0/nctxts")
    assert int(nctxts) == 160


def test_sysfs_attrs_are_live():
    """Callable attributes reflect current driver state."""
    machine = build_machine(1, OSConfig.LINUX)
    assert int(read_sysfs(
        machine, "/sys/class/infiniband/hfi1_0/tids_in_use")) == 0


def test_mckernel_reads_sysfs_through_offloading():
    """McKernel has no /sys at all: the read transparently offloads to
    Linux through the proxy (the paper's slow-path transparency)."""
    machine = build_machine(1, OSConfig.MCKERNEL)
    content = read_sysfs(machine,
                         "/sys/class/infiniband/hfi1_0/serial")
    assert content.startswith("0x11")
    assert machine.nodes[0].mckernel.tracer.get_count("offload.calls") >= 3
