"""Tests of the HFI1 Linux driver's file operations and driver state."""

import pytest

from repro.config import OSConfig
from repro.errors import BadSyscall, DriverError
from repro.experiments import build_machine
from repro.linux.hfi1 import ioctls as ioc
from repro.sim import Event
from repro.units import KiB, MiB


@pytest.fixture()
def machine():
    return build_machine(2, OSConfig.LINUX)


def run(machine, body, rank=0, node=0):
    task = machine.spawn_rank(node, rank)
    proc = machine.sim.process(body(task))
    machine.sim.run(until=proc)
    return proc.value


def test_open_allocates_driver_structs(machine):
    driver = machine.nodes[0].driver

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        return fd

    fd = run(machine, body)
    heap = machine.nodes[0].node.kheap
    # devdata + 16 engine states + filedata + pkt_q + lock word
    assert heap.live_objects() >= 19
    assert len(driver._files) == 1


def test_release_frees_driver_structs(machine):
    driver = machine.nodes[0].driver

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        yield from task.syscall("close", fd)

    run(machine, body)
    assert len(driver._files) == 0


def test_admin_ioctls_answer(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        info = yield from task.syscall("ioctl", fd,
                                       ioc.HFI1_IOCTL_CTXT_INFO, None)
        vers = yield from task.syscall("ioctl", fd,
                                       ioc.HFI1_IOCTL_GET_VERS, None)
        user = yield from task.syscall("ioctl", fd,
                                       ioc.HFI1_IOCTL_USER_INFO, None)
        return info, vers, user

    info, vers, user = run(machine, body)
    assert "ctxt" in info and info["credits"] == 64
    assert vers == 6
    assert user["num_sdma"] == machine.params.nic.sdma_engines


def test_unknown_ioctl_rejected(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        yield from task.syscall("ioctl", fd, 0x1234, None)

    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, BadSyscall)


def test_tid_update_registers_one_entry_per_page(machine):
    """The unmodified driver cannot exploit contiguity for TIDs either."""
    hfi = machine.nodes[0].node.hfi

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 64 * KiB)
        tids = yield from task.syscall(
            "ioctl", fd, ioc.HFI1_IOCTL_TID_UPDATE,
            {"vaddr": buf, "length": 64 * KiB})
        return fd, tids

    fd, tids = run(machine, body)
    assert len(tids) == 16                      # one per 4KB page
    assert hfi.tids_in_use == 16


def test_tid_free_releases_entries(machine):
    hfi = machine.nodes[0].node.hfi

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 16 * KiB)
        tids = yield from task.syscall(
            "ioctl", fd, ioc.HFI1_IOCTL_TID_UPDATE,
            {"vaddr": buf, "length": 16 * KiB})
        n = yield from task.syscall(
            "ioctl", fd, ioc.HFI1_IOCTL_TID_FREE, {"tids": tids})
        return n

    assert run(machine, body) == 4
    assert hfi.tids_in_use == 0


def test_tid_free_of_unowned_tid_rejected(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        yield from task.syscall("ioctl", fd, ioc.HFI1_IOCTL_TID_FREE,
                                {"tids": [777]})

    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, DriverError)


def test_writev_delivers_and_completes(machine):
    sim = machine.sim
    got = []

    def receiver(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        info = yield from task.syscall("ioctl", fd,
                                       ioc.HFI1_IOCTL_ASSIGN_CTXT, None)
        ctxt = machine.nodes[1].node.hfi.context(info["ctxt"])
        ctxt.on_packet = lambda pkt: got.append(pkt)
        return info["ctxt"]

    ctxt_id = run(machine, receiver, node=1)

    def sender(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 1 * MiB)
        done = Event(sim)
        meta = {"dst_node": 1, "dst_ctxt": ctxt_id, "kind": "eager",
                "completion": done, "payload": "DATA"}
        n = yield from task.syscall("writev", fd, [meta, (buf, 1 * MiB)])
        yield done
        return n

    assert run(machine, sender, node=0) == 1 * MiB
    machine.sim.run()
    assert len(got) == 1 and got[0].payload == "DATA"
    assert got[0].nbytes == 1 * MiB


def test_writev_pq_counter_balances(machine):
    """n_reqs in the shared user_sdma_pkt_q struct rises and falls."""
    driver = machine.nodes[0].driver
    sim = machine.sim

    def receiver(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        info = yield from task.syscall("ioctl", fd,
                                       ioc.HFI1_IOCTL_ASSIGN_CTXT, None)
        return info["ctxt"]

    ctxt_id = run(machine, receiver, node=1)

    def sender(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 256 * KiB)
        done = Event(sim)
        meta = {"dst_node": 1, "dst_ctxt": ctxt_id, "kind": "eager",
                "completion": done}
        yield from task.syscall("writev", fd, [meta, (buf, 256 * KiB)])
        state = list(driver._files.values())[-1]
        in_flight = state.pq.get("n_reqs")
        yield done
        return in_flight, state.pq.get("n_reqs")

    in_flight, after = run(machine, sender, node=0)
    assert in_flight == 1
    assert after == 0


def test_writev_needs_header_and_data(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        yield from task.syscall("writev", fd, [{}])

    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, BadSyscall)


def test_device_mmap_returns_mmio_window(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        addr = yield from task.syscall("mmap", fd, 0x10000)
        return addr

    assert run(machine, body) >= 0x7FFF_0000_0000


def test_poll_reports_backlog(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        empty = yield from task.syscall("poll", fd)
        return empty

    assert run(machine, body) == 0


def test_engine_states_report_running(machine):
    driver = machine.nodes[0].driver
    from repro.linux.hfi1.debuginfo import SDMA_STATE_S99_RUNNING
    for state in driver.engine_states:
        assert state.get("current_state") == SDMA_STATE_S99_RUNNING
        assert state.get("go_s99_running") == 1
