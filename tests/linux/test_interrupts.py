"""Interrupt-controller behaviour: routing, queueing, handler execution."""

import pytest

from repro.linux.interrupts import InterruptController
from repro.params import default_params
from repro.sim import Resource, Simulator, Tracer


def make_controller(capacity=2):
    sim = Simulator()
    params = default_params()
    os_cpus = Resource(sim, capacity=capacity, name="os")
    tracer = Tracer()
    ctrl = InterruptController(sim, params, os_cpus, tracer)
    return sim, params, os_cpus, tracer, ctrl


def test_irq_runs_after_delivery_latency():
    sim, params, cpus, tracer, ctrl = make_controller()
    fired = []
    ctrl.deliver(lambda: fired.append(sim.now))
    sim.run()
    assert len(fired) == 1
    assert fired[0] == pytest.approx(params.nic.irq_latency
                                     + params.nic.irq_handler_cost)
    assert tracer.get_count("irq.delivered") == 1


def test_irq_handler_generator_costs_run_on_cpu():
    sim, params, cpus, tracer, ctrl = make_controller()
    done = []

    def handler():
        def work():
            yield sim.timeout(5e-6)
            done.append(sim.now)
        return work()

    ctrl.deliver(handler)
    sim.run()
    assert done[0] == pytest.approx(
        params.nic.irq_latency + params.nic.irq_handler_cost + 5e-6)


def test_irqs_queue_on_busy_cpus():
    """More IRQs than OS CPUs serialize — the interference the paper's
    multi-kernel contains on the Linux cores."""
    sim, params, cpus, tracer, ctrl = make_controller(capacity=1)
    finish = []

    def handler(idx):
        def work():
            yield sim.timeout(10e-6)
            finish.append((idx, sim.now))
        return work()

    for i in range(4):
        ctrl.deliver(handler, i)
    sim.run()
    assert len(finish) == 4
    times = [t for _, t in finish]
    # serialized on one CPU: each completion at least one service apart
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g >= 10e-6 for g in gaps)
    assert tracer.accs["irq.service"].count == 4


def test_handler_args_passed():
    sim, params, cpus, tracer, ctrl = make_controller()
    got = []
    ctrl.deliver(lambda a, b: got.append((a, b)), "x", 7)
    sim.run()
    assert got == [("x", 7)]
