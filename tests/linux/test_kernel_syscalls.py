"""Linux kernel syscall-path tests on an assembled single node."""

import pytest

from repro.config import OSConfig
from repro.errors import BadSyscall
from repro.experiments import build_machine
from repro.units import MiB, PAGE_SIZE


@pytest.fixture()
def machine():
    return build_machine(1, OSConfig.LINUX)


def run_syscalls(machine, body):
    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run(until=proc)
    return proc.value


def test_open_close_device(machine):
    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        assert fd >= 3
        ret = yield from task.syscall("close", fd)
        return ret

    assert run_syscalls(machine, body) == 0


def test_open_regular_file(machine):
    def body(task):
        fd = yield from task.syscall("open", "/etc/hosts")
        nbytes = yield from task.syscall("read", fd, 100)
        yield from task.syscall("close", fd)
        return nbytes

    assert run_syscalls(machine, body) == 100


def test_mmap_munmap_roundtrip(machine):
    def body(task):
        va = yield from task.syscall("mmap", 1 * MiB)
        assert task.pagetable.translate(va) is not None
        yield from task.syscall("munmap", va, 1 * MiB)
        return va

    run_syscalls(machine, body)


def test_syscalls_consume_time(machine):
    def body(task):
        t0 = machine.sim.now
        yield from task.syscall("open", "/dev/hfi1_0")
        return machine.sim.now - t0

    elapsed = run_syscalls(machine, body)
    params = machine.params
    assert elapsed > params.syscall.open_cost


def test_syscall_accounting(machine):
    def body(task):
        yield from task.syscall("mmap", 64 * PAGE_SIZE)
        yield from task.syscall("nanosleep", 1e-6)

    run_syscalls(machine, body)
    tracer = machine.nodes[0].linux.tracer
    assert tracer.get_count("syscall.mmap.calls") == 1
    assert tracer.get_count("syscall.nanosleep.calls") == 1
    assert tracer.get_total("syscall.mmap") > 0


def test_unknown_syscall_rejected(machine):
    def body(task):
        yield from task.syscall("fork")

    task = machine.spawn_rank(0, 1)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, BadSyscall)


def test_bad_fd_operations_rejected(machine):
    def body(task):
        yield from task.syscall("writev", 99, [{}, (0, 1)])

    task = machine.spawn_rank(0, 2)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    assert isinstance(proc.exception, BadSyscall)


def test_nanosleep_sleeps(machine):
    def body(task):
        t0 = machine.sim.now
        yield from task.syscall("nanosleep", 5e-3)
        return machine.sim.now - t0

    assert run_syscalls(machine, body) >= 5e-3


def test_linux_compute_is_noisy_mckernel_is_not():
    linux_m = build_machine(1, OSConfig.LINUX)
    mck_m = build_machine(1, OSConfig.MCKERNEL)

    def body(machine):
        task = machine.spawn_rank(0, 0)

        def gen():
            t0 = machine.sim.now
            for _ in range(50):
                yield from task.compute(1e-3)
            return machine.sim.now - t0

        proc = machine.sim.process(gen())
        machine.sim.run(until=proc)
        return proc.value

    linux_elapsed = body(linux_m)
    mck_elapsed = body(mck_m)
    assert mck_elapsed == pytest.approx(50e-3)          # tickless: exact
    assert linux_elapsed > 50e-3                        # noise stole cycles
