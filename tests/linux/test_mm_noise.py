"""Tests for Linux memory management personality and the noise model."""

import numpy as np
import pytest

from repro.linux.mm import LinuxMM
from repro.linux.noise import NoNoise, NoiseModel
from repro.hw import FrameAllocator
from repro.kernels.base import Task
from repro.params import default_params
from repro.units import MiB, PAGE_SIZE


class _FakeKernel:
    name = "fake"


def make_mm():
    params = default_params()
    mcdram = FrameAllocator(64 * 1024, name="mcdram")
    ddr = FrameAllocator(128 * 1024, name="ddr")
    mm = LinuxMM(params, mcdram, ddr, np.random.default_rng(7))
    task = Task("t", _FakeKernel(), 0)
    return params, mm, task, mcdram, ddr


def test_anonymous_memory_is_fragmented():
    """Linux anonymous mappings almost never give physical contiguity —
    the reason the HFI1 driver caps SDMA requests at PAGE_SIZE."""
    params, mm, task, *_ = make_mm()
    va = mm.alloc_anonymous(task, 4 * MiB)
    spans = task.pagetable.phys_spans(va, 4 * MiB)
    mean_span = 4 * MiB / len(spans)
    assert mean_span < 1.25 * PAGE_SIZE


def test_anonymous_memory_not_pinned():
    params, mm, task, *_ = make_mm()
    va = mm.alloc_anonymous(task, 64 * 1024)
    assert not task.pagetable.is_pinned(va, 64 * 1024)


def test_free_anonymous_returns_frames():
    params, mm, task, mcdram, ddr = make_mm()
    before = mcdram.free_frames
    va = mm.alloc_anonymous(task, 1 * MiB)
    assert mcdram.free_frames == before - 256
    mm.free_anonymous(task, va, 1 * MiB)
    assert mcdram.free_frames == before


def test_mcdram_first_then_ddr():
    """MCDRAM is prioritized; DDR is the fallback (section 4.2)."""
    params, mm, task, mcdram, ddr = make_mm()
    huge = (mcdram.free_frames + 1) * PAGE_SIZE
    va = mm.alloc_anonymous(task, huge)
    assert ddr.allocated_frames > 0
    mm.free_anonymous(task, va, huge)


def test_get_user_pages_costs_per_page():
    params, mm, task, *_ = make_mm()
    va = mm.alloc_anonymous(task, 16 * PAGE_SIZE)
    pages, cost = mm.get_user_pages(task, va, 16 * PAGE_SIZE)
    assert len(pages) == 16
    assert cost == pytest.approx(16 * params.syscall.gup_per_page)


def test_noise_model_mean_matches_params():
    params = default_params()
    noise = NoiseModel(params.noise, np.random.default_rng(3))
    dt = 1.0
    samples = [noise.sample_extra(dt) for _ in range(400)]
    mean = float(np.mean(samples))
    assert mean == pytest.approx(params.noise.mean_fraction, rel=0.25)


def test_noise_is_nonnegative_and_heavy_tailed():
    params = default_params()
    noise = NoiseModel(params.noise, np.random.default_rng(4))
    samples = [noise.sample_extra(0.1) for _ in range(500)]
    assert min(samples) >= 0.0
    assert max(samples) > 5 * float(np.median(samples))


def test_zero_interval_has_zero_noise():
    params = default_params()
    noise = NoiseModel(params.noise, np.random.default_rng(5))
    assert noise.sample_extra(0.0) == 0.0


def test_nonoise_is_identity():
    assert NoNoise.inflate(1.5) == 1.5
    assert NoNoise.sample_extra(1.5) == 0.0
