"""The PicoBlock disabled-identity guarantee: with ``blk.replicas`` at
its default of 0 no machine grows a block device, and running the full
storage machinery (faults + guard + pxd stack) between two figure runs
leaves them bit-identical — the storage subsystem is invisible unless a
storage experiment opts in."""

from repro.config import OSConfig
from repro.experiments import build_machine, run_fig4, run_fig5a
from repro.params import default_params
from repro.units import KiB

FIG4_SIZES = (16 * KiB,)
FIG5_NODES = (2,)


def exercise_storage_machine():
    """Run one faulted, guarded storage cell so the pxd stack
    demonstrably touched global state between the comparison runs."""
    from repro.experiments.storage import _run_cell
    result = _run_cell(OSConfig.MCKERNEL_HFI, rate=0.02, n_writes=8)
    assert result.writes == 8  # the cell really ran


def test_default_params_grow_no_block_device():
    assert default_params().blk.replicas == 0
    machine = build_machine(1, OSConfig.MCKERNEL_HFI)
    mn = machine.nodes[0]
    assert mn.node.blockdev is None
    assert mn.pxd is None and mn.pxd_pico is None and mn.pxd_guard is None


def test_fig4_bit_identical_around_a_storage_run():
    baseline = run_fig4(sizes=FIG4_SIZES, repetitions=1)
    exercise_storage_machine()
    after = run_fig4(sizes=FIG4_SIZES, repetitions=1)
    assert after.series == baseline.series


def test_fig5_bit_identical_around_a_storage_run():
    baseline = run_fig5a(node_counts=FIG5_NODES, iterations=1)
    exercise_storage_machine()
    after = run_fig5a(node_counts=FIG5_NODES, iterations=1)
    assert after.relative == baseline.relative
