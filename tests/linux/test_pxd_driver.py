"""Tests of the pxd Linux driver: replicated writes, eviction, reads,
the admin ioctl surface and guard-driven probe/readmit."""

from dataclasses import replace

from repro.config import OSConfig, enable_guard
from repro.errors import BadSyscall, MediaError
from repro.experiments import build_machine
from repro.guard import GuardPolicy
from repro.linux.pxd import ioctls as ioc
from repro.params import default_params
from repro.sim import Event
from repro.units import USEC


def storage_params(replicas=3):
    params = default_params()
    return params.with_overrides(blk=replace(params.blk, replicas=replicas))


def make_machine(replicas=3, cfg=OSConfig.LINUX):
    machine = build_machine(1, cfg, params=storage_params(replicas))
    return machine, machine.nodes[0].pxd, machine.nodes[0].node.blockdev


def run(machine, body, rank=0):
    task = machine.spawn_rank(0, rank)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    return proc


def payload_for(i, sector_size, nsectors=2):
    return bytes([(13 * i + 5) & 0xFF]) * (nsectors * sector_size)


def write(machine, task, fd, buf, sector, payload):
    """Generator helper: one replicated write, waited to completion."""
    completion = Event(machine.sim)
    yield from task.syscall(
        "writev", fd,
        [{"sector": sector, "payload": payload, "completion": completion},
         (buf, len(payload))])
    yield completion


def test_write_read_roundtrip_mirrors_all_replicas():
    machine, pxd, blockdev = make_machine()
    sector_size = machine.params.blk.sector_size
    payload = payload_for(1, sector_size)

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", len(payload))
        yield from write(machine, task, fd, buf, 8, payload)
        data = yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_READ,
                                       {"sector": 8, "nsectors": 2})
        return data

    proc = run(machine, body)
    assert proc.exception is None
    assert proc.value == payload
    for media in blockdev.replicas:
        assert media.peek(8, 2) == payload
    assert machine.tracer.get_count("pxd.writes") == 1
    assert machine.tracer.get_count("pxd.acked_writes") == 1
    assert machine.tracer.get_count("pxd.reads") == 1
    assert pxd.stats()["wr_seq"] == 1


def test_unaligned_payload_rejected():
    machine, pxd, _ = make_machine()
    sector_size = machine.params.blk.sector_size

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", sector_size)
        yield from write(machine, task, fd, buf, 0,
                         b"x" * (sector_size + 1))

    assert isinstance(run(machine, body).exception, BadSyscall)


def test_probe_scratch_sector_is_outside_the_data_region():
    machine, pxd, _ = make_machine()
    sector_size = machine.params.blk.sector_size
    assert pxd.data_sectors == machine.params.blk.sectors - 1
    assert pxd.probe_sector == pxd.data_sectors

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", sector_size)
        yield from write(machine, task, fd, buf, pxd.probe_sector,
                         b"x" * sector_size)

    assert isinstance(run(machine, body).exception, BadSyscall)


def test_failing_replica_is_evicted_and_write_acked_from_survivors():
    machine, pxd, blockdev = make_machine(replicas=3)
    sector_size = machine.params.blk.sector_size
    payload = payload_for(2, sector_size)
    blockdev.replicas[0].online = False  # path loss before the write

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", len(payload))
        yield from write(machine, task, fd, buf, 4, payload)
        data = yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_READ,
                                       {"sector": 4, "nsectors": 2})
        return data

    proc = run(machine, body)
    assert proc.exception is None
    assert proc.value == payload            # read-your-writes held
    assert pxd.inservice == {1, 2}
    assert pxd.stats()["states"][0] == "evicted"
    assert pxd.stats()["fail_cnt"] == 1
    assert 4 in pxd._dirty[0] and 5 in pxd._dirty[0]
    assert machine.tracer.get_count("pxd.evictions") == 1
    assert machine.tracer.get_count("pxd.acked_writes") == 1
    assert pxd.fsm_violations() == [] and pxd.violations == []


def test_all_replicas_failing_surfaces_a_typed_error():
    machine, pxd, blockdev = make_machine(replicas=2)
    sector_size = machine.params.blk.sector_size
    for media in blockdev.replicas:
        media.online = False
    outcomes = []

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", 2 * sector_size)
        try:
            yield from write(machine, task, fd, buf, 0,
                             payload_for(0, sector_size))
        except MediaError:
            outcomes.append("typed")
        # the in-service set is now empty: the refusal is immediate
        try:
            yield from write(machine, task, fd, buf, 4,
                             payload_for(1, sector_size))
        except MediaError:
            outcomes.append("typed-empty")

    proc = run(machine, body)
    assert proc.exception is None
    assert outcomes == ["typed", "typed-empty"]
    assert pxd.inservice == set()
    assert machine.tracer.get_count("pxd.failed_writes") == 1
    assert pxd.fsm_violations() == []


def test_update_path_resyncs_divergence_and_readmits():
    machine, pxd, blockdev = make_machine(replicas=2)
    sector_size = machine.params.blk.sector_size
    a = payload_for(3, sector_size)
    b = payload_for(4, sector_size)

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", len(a))
        blockdev.replicas[1].online = False
        yield from write(machine, task, fd, buf, 0, a)   # evicts replica 1
        yield from write(machine, task, fd, buf, 8, b)   # bypasses replica 1
        rc = yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_UPDATE_PATH,
                                     {"replica": 1})
        return rc

    proc = run(machine, body)
    assert proc.exception is None
    assert proc.value == 1
    assert pxd.inservice == {0, 1}
    assert blockdev.replicas[1].peek(0, 2) == a
    assert blockdev.replicas[1].peek(8, 2) == b
    assert pxd._dirty == {}
    assert machine.tracer.get_count("pxd.resyncs") == 1
    assert machine.tracer.get_count("pxd.readmits") == 1
    report = pxd.resync_reports[-1]
    assert report["refused"] is False and report["diverged"] >= 2
    assert pxd.fsm_violations() == []


def test_update_path_validates_the_replica_index():
    machine, pxd, _ = make_machine(replicas=2)

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_UPDATE_PATH,
                                {"replica": 7})

    assert isinstance(run(machine, body).exception, BadSyscall)


def test_set_suspend_accepts_int_and_dict_forms():
    machine, pxd, _ = make_machine()

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_SET_SUSPEND, 1)
        first = (yield from task.syscall(
            "ioctl", fd, ioc.PXD_IOCTL_GET_STATS, None))["suspend"]
        yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_SET_SUSPEND,
                                {"suspend": 0})
        second = (yield from task.syscall(
            "ioctl", fd, ioc.PXD_IOCTL_GET_STATS, None))["suspend"]
        return first, second

    proc = run(machine, body)
    assert proc.exception is None
    assert proc.value == (1, 0)


def test_guard_probe_reattaches_resyncs_and_readmits():
    """With the guard plane installed, eviction is followed — without
    any administrative action — by breaker-admitted probe, resync and
    re-admission once the probe backoff elapses."""
    enable_guard(GuardPolicy(failure_window=8, failure_threshold=1,
                             probe_successes=1, probe_backoff=100 * USEC))
    try:
        machine, pxd, blockdev = make_machine(replicas=2)
        assert machine.nodes[0].pxd_guard is not None
        sector_size = machine.params.blk.sector_size

        def body(task):
            fd = yield from task.syscall("open", "/dev/pxd/pxd0")
            buf = yield from task.syscall("mmap", 2 * sector_size)
            blockdev.replicas[1].online = False
            yield from write(machine, task, fd, buf, 0,
                             payload_for(5, sector_size))
            assert pxd.inservice == {0}
            # keep traffic flowing past the probe backoff so head
            # finishes kick the probe machinery
            for i in range(6):
                yield machine.sim.timeout(60 * USEC)
                yield from write(machine, task, fd, buf, 8 + 4 * i,
                                 payload_for(6 + i, sector_size))

        proc = run(machine, body)
        assert proc.exception is None
        assert pxd.inservice == {0, 1}
        assert machine.tracer.get_count("pxd.probes") >= 1
        assert machine.tracer.get_count("pxd.readmits") >= 1
        assert machine.tracer.get_count("pxd.resyncs") >= 1
        # the readmitted replica converged to the survivor
        data_sectors = pxd.data_sectors
        assert blockdev.replicas[1].peek(0, data_sectors) \
            == blockdev.replicas[0].peek(0, data_sectors)
        assert pxd.fsm_violations() == [] and pxd.violations == []
    finally:
        enable_guard(None)
