"""Property tests of the pxd replication contract (PR-8 satellite).

Across randomized interleavings of path loss, eviction and guard-driven
recovery, the invariants that make replicated storage worth having must
hold: every write resolves acked-intact or typed, every acked write is
byte-identical on every in-service replica, the in-service set is
bitwise convergent over the whole data region, and the replica FSM
never takes an illegal edge.  Divergence on an evicted replica (torn
write) must be detected and repaired on re-admission, and re-admission
without a healthy resync source must be refused typed."""

import random
from dataclasses import replace

import pytest

from repro.config import OSConfig, enable_fault_injection, enable_guard
from repro.errors import MediaError
from repro.experiments import build_machine
from repro.faults import FaultPlan, ScheduledFault
from repro.guard import GuardPolicy
from repro.linux.pxd import ioctls as ioc
from repro.params import default_params
from repro.sim import Event
from repro.units import USEC

NSECTORS = 2
STRIDE = 4
TRIAL_WRITES = 16

#: hair-trigger breakers with fast probes, so eviction and re-admission
#: both happen inside a short randomized trial
TRIAL_POLICY = GuardPolicy(failure_window=8, failure_threshold=1,
                           probe_successes=1, probe_backoff=80 * USEC)

TRIAL_CONFIGS = (OSConfig.LINUX, OSConfig.MCKERNEL_HFI)


def storage_params(replicas=3):
    params = default_params()
    return params.with_overrides(blk=replace(params.blk, replicas=replicas))


def run(machine, body):
    task = machine.spawn_rank(0, 0)
    proc = machine.sim.process(body(task))
    machine.sim.run()
    return proc


def write(machine, task, fd, buf, sector, payload):
    completion = Event(machine.sim)
    yield from task.syscall(
        "writev", fd,
        [{"sector": sector, "payload": payload, "completion": completion},
         (buf, len(payload))])
    yield completion


def assert_replica_invariants(machine, pxd, blockdev, acked):
    """The replication contract, checked at end of run."""
    for i, (sector, payload) in sorted(acked.items()):
        for r in sorted(pxd.inservice):
            assert blockdev.replicas[r].peek(sector, NSECTORS) == payload, \
                f"acked write {i} diverges on in-service replica {r}"
    ins = sorted(pxd.inservice)
    if len(ins) > 1:
        ref = blockdev.replicas[ins[0]].peek(0, pxd.data_sectors)
        for r in ins[1:]:
            assert blockdev.replicas[r].peek(0, pxd.data_sectors) == ref, \
                f"in-service replicas {ins[0]} and {r} are not bitwise " \
                f"identical over the data region"
    assert pxd.fsm_violations() == []
    assert pxd.violations == []


@pytest.mark.parametrize("seed", range(6))
def test_random_path_loss_interleavings_preserve_the_contract(seed):
    """Randomized schedule of path-loss knocks against a live write
    stream, with the guard plane probing and re-admitting behind it."""
    rng = random.Random(seed)
    cfg = TRIAL_CONFIGS[seed % len(TRIAL_CONFIGS)]
    enable_guard(TRIAL_POLICY)
    try:
        machine = build_machine(1, cfg, params=storage_params(3))
        pxd = machine.nodes[0].pxd
        blockdev = machine.nodes[0].node.blockdev
        sector_size = machine.params.blk.sector_size
        outcomes = {}
        acked = {}

        def body(task):
            fd = yield from task.syscall("open", "/dev/pxd/pxd0")
            buf = yield from task.syscall("mmap", NSECTORS * sector_size)
            for i in range(TRIAL_WRITES):
                if rng.random() < 0.3:
                    blockdev.replicas[rng.randrange(3)].online = False
                yield machine.sim.timeout(40 * USEC)
                sector = i * STRIDE
                payload = bytes([(31 * seed + 7 * i + 1) & 0xFF]) \
                    * (NSECTORS * sector_size)
                try:
                    yield from write(machine, task, fd, buf, sector,
                                     payload)
                except MediaError:
                    outcomes[i] = "typed"
                    continue
                acked[i] = (sector, payload)
                try:
                    data = yield from task.syscall(
                        "ioctl", fd, ioc.PXD_IOCTL_READ,
                        {"sector": sector, "nsectors": NSECTORS})
                except MediaError:
                    outcomes[i] = "acked-read-typed"
                    continue
                outcomes[i] = "acked" if data == payload else "torn-read"

        proc = run(machine, body)
        assert proc.exception is None
        for i in range(TRIAL_WRITES):
            verdict = outcomes.get(i, "hung")
            assert verdict in ("acked", "typed", "acked-read-typed"), \
                f"seed {seed}: write {i} ended {verdict!r} — neither " \
                f"intact nor typed"
        assert_replica_invariants(machine, pxd, blockdev, acked)
    finally:
        enable_guard(None)


def test_torn_write_divergence_is_detected_and_resynced_on_readmit():
    """A torn write leaves divergent media on the evicted replica; the
    UPDATE_PATH resync must find the divergence and repair it before
    re-admission."""
    plan = FaultPlan.placed(ScheduledFault("media.torn_write", 0))
    enable_fault_injection(plan)
    try:
        machine = build_machine(1, OSConfig.LINUX,
                                params=storage_params(2))
        pxd = machine.nodes[0].pxd
        blockdev = machine.nodes[0].node.blockdev
        sector_size = machine.params.blk.sector_size
        payload = b"\xC3" * (NSECTORS * sector_size)

        def body(task):
            fd = yield from task.syscall("open", "/dev/pxd/pxd0")
            buf = yield from task.syscall("mmap", len(payload))
            yield from write(machine, task, fd, buf, 0, payload)
            evicted = ({0, 1} - pxd.inservice).pop()
            rc = yield from task.syscall(
                "ioctl", fd, ioc.PXD_IOCTL_UPDATE_PATH,
                {"replica": evicted})
            return evicted, rc

        proc = run(machine, body)
        assert proc.exception is None
        evicted, rc = proc.value
        assert rc == 1
        # the tear was real: half the payload landed before the fault,
        # and the resync found at least that divergent sector
        report = pxd.resync_reports[-1]
        assert report["refused"] is False
        assert report["diverged"] >= 1
        survivor = ({0, 1} - {evicted}).pop()
        assert blockdev.replicas[evicted].peek(0, NSECTORS) == payload
        assert blockdev.replicas[survivor].peek(0, NSECTORS) == payload
        assert pxd.inservice == {0, 1}
        assert pxd.fsm_violations() == []
    finally:
        enable_fault_injection(None)


def test_readmit_without_healthy_source_is_refused_typed():
    """No guard plane, every replica evicted: UPDATE_PATH on a
    non-authoritative replica is a typed refusal (there is nothing
    trustworthy to resync from); the last replica standing re-admits
    as the data authority, after which the refused replica can follow."""
    machine = build_machine(1, OSConfig.LINUX, params=storage_params(2))
    pxd = machine.nodes[0].pxd
    blockdev = machine.nodes[0].node.blockdev
    sector_size = machine.params.blk.sector_size
    refusals = []

    def body(task):
        fd = yield from task.syscall("open", "/dev/pxd/pxd0")
        buf = yield from task.syscall("mmap", NSECTORS * sector_size)
        for media in blockdev.replicas:
            media.online = False
        try:
            yield from write(machine, task, fd, buf, 0,
                             b"\x11" * (NSECTORS * sector_size))
        except MediaError:
            pass
        assert pxd.inservice == set()
        authority = pxd._last_evicted
        other = ({0, 1} - {authority}).pop()
        try:
            yield from task.syscall("ioctl", fd, ioc.PXD_IOCTL_UPDATE_PATH,
                                    {"replica": other})
        except MediaError as exc:
            refusals.append(str(exc))
        rc_auth = yield from task.syscall(
            "ioctl", fd, ioc.PXD_IOCTL_UPDATE_PATH, {"replica": authority})
        rc_other = yield from task.syscall(
            "ioctl", fd, ioc.PXD_IOCTL_UPDATE_PATH, {"replica": other})
        return rc_auth, rc_other

    proc = run(machine, body)
    assert proc.exception is None
    assert len(refusals) == 1 and "no healthy source" in refusals[0]
    assert proc.value == (1, 1)
    assert pxd.inservice == {0, 1}
    assert machine.tracer.get_count("pxd.readmit_refused") == 1
    assert machine.tracer.get_count("pxd.authority_readmits") == 1
    refused = [r for r in pxd.resync_reports if r.get("refused")]
    assert refused and refused[0]["reason"] == "no healthy source"
    assert blockdev.replicas[0].peek(0, pxd.data_sectors) \
        == blockdev.replicas[1].peek(0, pxd.data_sectors)
    assert pxd.fsm_violations() == []
