"""Tests for the oversubscribed-core scheduling micro-model."""

import pytest

from repro.linux.scheduler import (OversubscribedCore, SchedModelParams,
                                   derived_switch_cost,
                                   effective_service_time)


def test_single_proxy_pays_no_steady_state_switches():
    core = OversubscribedCore()
    first = core.serve(0, 4e-6)
    later = core.serve(0, 4e-6)
    assert first > later
    assert later == pytest.approx(4e-6)


def test_alternating_proxies_pay_switch_plus_refill():
    p = SchedModelParams()
    core = OversubscribedCore(p)
    core.serve(0, 4e-6)
    core.serve(1, 4e-6)
    cost = core.serve(0, 4e-6)   # 0 was evicted by exactly one other
    assert cost == pytest.approx(
        4e-6 + p.direct_switch + p.full_refill * 1 / p.eviction_span)


def test_refill_saturates_at_full_eviction():
    p = SchedModelParams()
    core = OversubscribedCore(p)
    n = p.eviction_span + 3
    for proxy in range(n):
        core.serve(proxy, 4e-6)
    cost = core.serve(0, 4e-6)   # long gone: full refill
    assert cost == pytest.approx(4e-6 + p.direct_switch + p.full_refill)


def test_effective_service_monotone_then_saturating():
    values = [effective_service_time(n) for n in (1, 2, 4, 8, 16)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(values[-2], rel=0.05)


def test_derived_cost_excludes_handler():
    handler = 4e-6
    total = effective_service_time(8, handler)
    assert derived_switch_cost(8, handler) == pytest.approx(total - handler)


def test_derived_cost_in_calibrated_regime():
    """The macro model's 75us constant sits inside the derived band for
    the paper's 8-proxies-per-core operating point."""
    from repro.params import default_params
    derived = derived_switch_cost(8)
    calibrated = default_params().ikc.context_switch_cost
    assert 0.5 * derived < calibrated < 2.0 * derived


def test_mean_service_accounting():
    core = OversubscribedCore()
    assert core.mean_service == 0.0
    core.serve(0, 1e-6)
    core.serve(1, 1e-6)
    assert core.mean_service == pytest.approx(core.busy_seconds / 2)
