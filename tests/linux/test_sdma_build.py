"""Tests for SDMA descriptor construction — the 4KB vs 10KB asymmetry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DriverError
from repro.linux.hfi1.sdma import (build_descs_from_pages,
                                   build_descs_from_spans,
                                   split_spans_for_tids)
from repro.units import KiB, PAGE_SIZE


def test_linux_style_one_desc_per_page():
    pages = [i * PAGE_SIZE for i in range(16)]  # physically contiguous!
    descs = build_descs_from_pages(pages, 0, 16 * PAGE_SIZE)
    # contiguity is invisible: still 16 descriptors of 4KB
    assert len(descs) == 16
    assert all(d.nbytes == PAGE_SIZE for d in descs)


def test_linux_style_never_exceeds_page_size():
    pages = [i * PAGE_SIZE for i in range(4)]
    descs = build_descs_from_pages(pages, 0, 4 * PAGE_SIZE,
                                   max_request=10 * KiB)
    assert max(d.nbytes for d in descs) == PAGE_SIZE


def test_linux_style_handles_offset_and_partial_tail():
    pages = [0x10000, 0x11000, 0x99000]
    descs = build_descs_from_pages(pages, 0x800, 2 * PAGE_SIZE)
    assert descs[0].paddr == 0x10800 and descs[0].nbytes == PAGE_SIZE - 0x800
    assert sum(d.nbytes for d in descs) == 2 * PAGE_SIZE


def test_linux_style_short_page_list_rejected():
    with pytest.raises(DriverError):
        build_descs_from_pages([0], 0, 2 * PAGE_SIZE)


def test_pico_style_coalesces_to_hardware_max():
    spans = [(0x100000, 40 * KiB)]
    descs = build_descs_from_spans(spans, 10 * KiB)
    assert [d.nbytes for d in descs] == [10 * KiB] * 4
    assert descs[1].paddr == 0x100000 + 10 * KiB


def test_pico_style_respects_span_boundaries():
    spans = [(0x100000, 12 * KiB), (0x900000, 4 * KiB)]
    descs = build_descs_from_spans(spans, 10 * KiB)
    assert [d.nbytes for d in descs] == [10 * KiB, 2 * KiB, 4 * KiB]


def test_desc_count_ratio_for_4mb():
    """The Figure 4 mechanism: 1024 descriptors vs 410 for 4MB."""
    total = 4 * 1024 * KiB
    pages = [i * PAGE_SIZE for i in range(total // PAGE_SIZE)]
    linux = build_descs_from_pages(pages, 0, total)
    pico = build_descs_from_spans([(0, total)], 10 * KiB)
    assert len(linux) == 1024
    assert len(pico) == -(-total // (10 * KiB))  # 410
    assert len(pico) < 0.45 * len(linux)


def test_split_spans_for_tids():
    spans = [(0, 5 * KiB), (0x100000, 3 * KiB)]
    out = split_spans_for_tids(spans, 2 * KiB)
    assert out == [(0, 2 * KiB), (2 * KiB, 2 * KiB), (4 * KiB, 1 * KiB),
                   (0x100000, 2 * KiB), (0x100000 + 2 * KiB, 1 * KiB)]


def test_bad_inputs_rejected():
    with pytest.raises(DriverError):
        build_descs_from_pages([0], 0, 0)
    with pytest.raises(DriverError):
        build_descs_from_pages([0], PAGE_SIZE, KiB)
    with pytest.raises(DriverError):
        build_descs_from_spans([(0, 0)], 10 * KiB)
    with pytest.raises(DriverError):
        build_descs_from_spans([(0, KiB)], 0)


@given(
    lengths=st.lists(st.integers(1, 64 * KiB), min_size=1, max_size=12),
    max_request=st.sampled_from([2 * KiB, 4 * KiB, 10 * KiB]),
)
@settings(max_examples=80)
def test_span_descs_partition_the_bytes(lengths, max_request):
    """Property: descriptors exactly cover the spans, none oversized."""
    base = 0
    spans = []
    for ln in lengths:
        spans.append((base, ln))
        base += ln + 0x100000  # keep spans non-adjacent
    descs = build_descs_from_spans(spans, max_request)
    assert sum(d.nbytes for d in descs) == sum(lengths)
    assert all(0 < d.nbytes <= max_request for d in descs)
    # descriptors are ordered and disjoint within each span
    for (pa, ln) in spans:
        inside = [d for d in descs if pa <= d.paddr < pa + ln]
        assert sum(d.nbytes for d in inside) == ln
