"""Regression: a permanently-halted SDMA engine must surface a typed
DeviceTimeout from the slow path's engine wait instead of hanging the
submitter forever (the pre-PicoGuard behaviour was an unbounded wait)."""

import pytest

from repro.config import OSConfig
from repro.errors import DeviceTimeout
from repro.experiments import build_machine
from repro.linux.hfi1.debuginfo import SDMA_STATE_S80_HW_FREEZE
from repro.sim import Event
from repro.units import MiB


@pytest.fixture
def machine():
    return build_machine(2, OSConfig.LINUX)


def freeze_forever(machine, node=0):
    """Freeze every engine and disarm recovery so no IRQ ever brings
    the state machine back to S99_RUNNING."""
    driver = machine.nodes[node].driver
    for state in driver.engine_states:
        state.set("current_state", SDMA_STATE_S80_HW_FREEZE)
        state.set("go_s99_running", 0)
    driver._sdma_error_irq = lambda engine, reason: None
    return driver


def test_wedged_engine_wait_surfaces_device_timeout(machine):
    sim = machine.sim
    driver = freeze_forever(machine)
    engine = machine.nodes[0].node.hfi.engines[0]
    t0 = sim.now
    proc = sim.process(driver._await_engine_running(engine))
    sim.run()
    assert isinstance(proc.exception, DeviceTimeout)
    assert "S99_RUNNING" in str(proc.exception)
    # the wait was bounded by exactly the configured budget
    budget = machine.params.nic.sdma_wait_timeout
    assert sim.now - t0 == pytest.approx(budget)
    assert machine.tracer.get_count("hfi.sdma_wait_timeouts") == 1


def test_wedged_engine_writev_fails_typed_not_hung(machine):
    """End to end: a writev against a permanently-dead device returns a
    typed error to the caller instead of wedging the task."""
    sim = machine.sim
    freeze_forever(machine)
    machine.nodes[1].node.hfi.alloc_context("sink")

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        buf = yield from task.syscall("mmap", 1 * MiB)
        meta = {"dst_node": 1, "dst_ctxt": 0, "kind": "eager",
                "completion": Event(sim)}
        yield from task.syscall("writev", fd, [meta, (buf, 1 * MiB)])

    task = machine.spawn_rank(0, 0)
    proc = sim.process(body(task))
    sim.run()
    assert isinstance(proc.exception, DeviceTimeout)


def test_recovering_engine_wait_still_completes(machine):
    """The deadline must not fire spuriously: with recovery left armed
    the wait returns normally well inside the budget."""
    sim = machine.sim
    driver = machine.nodes[0].driver
    for state in driver.engine_states:
        state.set("current_state", SDMA_STATE_S80_HW_FREEZE)
        state.set("go_s99_running", 0)
    engine = machine.nodes[0].node.hfi.engines[0]
    proc = sim.process(driver._await_engine_running(engine))
    sim.run()
    assert proc.ok
    assert machine.tracer.get_count("hfi.sdma_wait_timeouts") == 0
