"""Unit tests for the VFS layer: chrdevs, fd tables, file ops defaults."""

import pytest

from repro.errors import BadSyscall
from repro.linux.vfs import VFS, File, FileOps
from repro.sim import Simulator


def test_register_and_lookup_chrdev():
    vfs = VFS()
    ops = FileOps()
    vfs.register_chrdev("/dev/hfi1_0", ops)
    assert vfs.is_device("/dev/hfi1_0")
    assert vfs.lookup("/dev/hfi1_0") is ops


def test_double_register_rejected():
    vfs = VFS()
    vfs.register_chrdev("/dev/x", FileOps())
    with pytest.raises(BadSyscall):
        vfs.register_chrdev("/dev/x", FileOps())


def test_regular_paths_get_default_ops():
    vfs = VFS()
    assert not vfs.is_device("/etc/hosts")
    assert isinstance(vfs.lookup("/etc/hosts"), FileOps)


def test_fd_numbers_start_at_three_and_increment():
    vfs = VFS()
    f1, f2 = File("/a", FileOps()), File("/b", FileOps())
    assert vfs.install_fd("t", f1) == 3
    assert vfs.install_fd("t", f2) == 4
    assert vfs.file_for("t", 3) is f1


def test_fd_tables_are_per_task():
    vfs = VFS()
    fd_a = vfs.install_fd("a", File("/x", FileOps()))
    fd_b = vfs.install_fd("b", File("/y", FileOps()))
    assert fd_a == fd_b == 3
    assert vfs.file_for("a", 3).path == "/x"
    assert vfs.file_for("b", 3).path == "/y"


def test_bad_fd_rejected():
    vfs = VFS()
    with pytest.raises(BadSyscall):
        vfs.file_for("t", 3)


def test_close_removes_fd():
    vfs = VFS()
    fd = vfs.install_fd("t", File("/x", FileOps()))
    vfs.close_fd("t", fd)
    with pytest.raises(BadSyscall):
        vfs.file_for("t", fd)
    with pytest.raises(BadSyscall):
        vfs.close_fd("t", fd)


def test_default_fileops_reject_data_ops():
    sim = Simulator()
    ops = FileOps()
    file = File("/x", ops)

    def try_writev():
        yield from ops.writev(None, file, None, [])

    proc = sim.process(try_writev())
    sim.run()
    assert isinstance(proc.exception, BadSyscall)

    def try_ioctl():
        yield from ops.ioctl(None, file, None, 0, None)

    proc = sim.process(try_ioctl())
    sim.run()
    assert isinstance(proc.exception, BadSyscall)
