"""McKernel syscall-routing tests: what runs locally, what offloads,
and the proxy-process bookkeeping."""

import pytest

from repro.config import OSConfig
from repro.errors import BadSyscall, ReproError
from repro.experiments import build_machine
from repro.units import MiB, PAGE_SIZE


@pytest.fixture()
def machine():
    return build_machine(1, OSConfig.MCKERNEL)


def run(machine, body, rank=0):
    task = machine.spawn_rank(0, rank)
    proc = machine.sim.process(body(task))
    machine.sim.run(until=proc)
    return task, proc.value


def test_anonymous_mmap_is_local(machine):
    before = machine.nodes[0].mckernel.tracer.get_count("offload.calls")

    def body(task):
        va = yield from task.syscall("mmap", 1 * MiB)
        return va

    task, va = run(machine, body)
    after = machine.nodes[0].mckernel.tracer.get_count("offload.calls")
    assert after == before                    # no offload for anon mmap
    assert task.pagetable.is_pinned(va, 1 * MiB)


def test_munmap_is_local_plus_shadow_offload(machine):
    mck = machine.nodes[0].mckernel

    def body(task):
        va = yield from task.syscall("mmap", 1 * MiB)
        before = mck.tracer.get_count("offload.calls")
        yield from task.syscall("munmap", va, 1 * MiB)
        return mck.tracer.get_count("offload.calls") - before

    _, shadow_calls = run(machine, body)
    assert shadow_calls == 1                  # the proxy shadow unmap


def test_nanosleep_is_local(machine):
    mck = machine.nodes[0].mckernel

    def body(task):
        before = mck.tracer.get_count("offload.calls")
        t0 = machine.sim.now
        yield from task.syscall("nanosleep", 1e-3)
        return (machine.sim.now - t0,
                mck.tracer.get_count("offload.calls") - before)

    _, (elapsed, offloads) = run(machine, body)
    assert elapsed >= 1e-3
    assert offloads == 0


def test_proxy_shares_user_pagetable(machine):
    mck = machine.nodes[0].mckernel

    def body(task):
        va = yield from task.syscall("mmap", 64 * PAGE_SIZE)
        return va

    task, va = run(machine, body)
    proxy = mck.proxy_for(task)
    assert proxy.linux_task.pagetable is task.pagetable
    assert proxy.linux_task.pagetable.translate(va) == \
        task.pagetable.translate(va)


def test_device_fd_cache_lifecycle(machine):
    mck = machine.nodes[0].mckernel

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        path, file = mck.device_file(task, fd)
        assert path == "/dev/hfi1_0"
        yield from task.syscall("close", fd)
        return fd

    task, fd = run(machine, body)
    with pytest.raises(BadSyscall):
        mck.device_file(task, fd)


def test_regular_file_fds_not_cached_as_devices(machine):
    def body(task):
        fd = yield from task.syscall("open", "/etc/motd")
        return fd

    task, fd = run(machine, body)
    with pytest.raises(BadSyscall):
        machine.nodes[0].mckernel.device_file(task, fd)


def test_proxy_required_for_offload(machine):
    mck = machine.nodes[0].mckernel
    orphan = mck.spawn_task("orphan", 99)     # no proxy created

    def body():
        yield from mck.syscall(orphan, "open", "/etc/passwd")

    proc = machine.sim.process(body())
    machine.sim.run()
    assert isinstance(proc.exception, ReproError)


def test_oversubscribed_core_timeshares(machine):
    """Two tasks on one LWK core co-operatively share it: computation
    takes proportionally longer; a lone task is exact (tick-less)."""
    mck = machine.nodes[0].mckernel
    core = mck.partition.cores[0].core_id
    a = mck.spawn_process("share-a", core_id=core)
    b = mck.spawn_process("share-b", core_id=core)
    lone_core = mck.partition.cores[1].core_id
    lone = mck.spawn_process("lone", core_id=lone_core)

    def body(task):
        t0 = machine.sim.now
        yield from task.compute(1e-3)
        return machine.sim.now - t0

    procs = [machine.sim.process(body(t)) for t in (a, b, lone)]
    machine.sim.run()
    assert procs[2].value == pytest.approx(1e-3)        # exact, no noise
    assert procs[0].value == pytest.approx(2e-3)        # shared core
    assert procs[1].value == pytest.approx(2e-3)


def test_fd_numbers_come_from_linux(machine):
    """McKernel 'simply returns the number it receives from the proxy
    process' (paper section 2.1)."""
    mck = machine.nodes[0].mckernel

    def body(task):
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        proxy = mck.proxy_for(task)
        linux_file = machine.nodes[0].linux.vfs.file_for(proxy.name, fd)
        return linux_file.path

    _, path = run(machine, body)
    assert path == "/dev/hfi1_0"
