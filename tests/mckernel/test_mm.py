"""Tests for McKernel memory management: contiguity, pinning, per-core
allocation and the foreign-CPU kfree extension."""

import pytest

from repro.errors import ReproError
from repro.hw import FrameAllocator, SharedHeap
from repro.kernels.base import Task
from repro.mckernel.mm import LwkMM, PerCoreAllocator
from repro.params import default_params
from repro.units import MiB, PAGE_SIZE


class _FakeKernel:
    name = "mckernel"


def make_mm(frames=128 * 1024):
    params = default_params()
    alloc = FrameAllocator(frames, name="lwk")
    mm = LwkMM(params, alloc)
    task = Task("t", _FakeKernel(), 0)
    return params, mm, task, alloc


def test_anonymous_memory_is_contiguous_and_large_paged():
    params, mm, task, _ = make_mm()
    va = mm.alloc_anonymous(task, 4 * MiB)
    spans = task.pagetable.phys_spans(va, 4 * MiB)
    assert len(spans) == 1                      # fully contiguous
    assert len(task.pagetable) == 2             # two 2MB entries


def test_anonymous_memory_is_pinned():
    params, mm, task, _ = make_mm()
    va = mm.alloc_anonymous(task, 1 * MiB)
    assert task.pagetable.is_pinned(va, 1 * MiB)


def test_small_allocations_still_contiguous():
    params, mm, task, _ = make_mm()
    va = mm.alloc_anonymous(task, 24 * 1024)
    assert len(task.pagetable.phys_spans(va, 24 * 1024)) == 1


def test_fallback_when_fragmented():
    """Under fragmentation the LWK still allocates, just less contiguously."""
    params, mm, task, alloc = make_mm(frames=1024)
    singles = [alloc.alloc_contiguous(1) for _ in range(1024)]
    alloc.free(singles[::2])   # free every other frame: no run of 2 exists
    va = mm.alloc_anonymous(task, 16 * PAGE_SIZE)
    spans = task.pagetable.phys_spans(va, 16 * PAGE_SIZE)
    assert len(spans) == 16
    alloc.free(singles[1::2])


def test_free_anonymous_returns_frames():
    params, mm, task, alloc = make_mm()
    before = alloc.free_frames
    va = mm.alloc_anonymous(task, 2 * MiB)
    mm.free_anonymous(task, va, 2 * MiB)
    assert alloc.free_frames == before


def test_lwk_frames_preserve_global_frame_numbers():
    """IHK hands the LWK a window with absolute frame numbers."""
    params = default_params()
    alloc = FrameAllocator(1024, base_frame=5000)
    mm = LwkMM(params, alloc)
    task = Task("t", _FakeKernel(), 0)
    va = mm.alloc_anonymous(task, 64 * 1024)
    pa = task.pagetable.translate(va)
    assert pa >= 5000 * PAGE_SIZE


# --- per-core allocator -------------------------------------------------------

def make_alloc():
    params = default_params()
    heap = SharedHeap(1 << 20)
    alloc = PerCoreAllocator(params, heap, lwk_cores={4, 5, 6, 7})
    return params, heap, alloc


def test_kmalloc_kfree_on_lwk_core():
    params, heap, alloc = make_alloc()
    addr, cost = alloc.kmalloc(192, core_id=4)
    assert cost == params.mem.kmalloc_cost
    assert alloc.kfree(addr, core_id=5) == params.mem.kfree_cost
    assert alloc.live_objects() == 0


def test_kmalloc_on_linux_core_rejected():
    params, heap, alloc = make_alloc()
    with pytest.raises(ReproError):
        alloc.kmalloc(64, core_id=0)


def test_kfree_on_linux_cpu_fails_without_extension():
    """The unmodified behaviour: SDMA completion on a Linux CPU cannot
    free McKernel memory (section 3.3)."""
    params, heap, alloc = make_alloc()
    addr, _ = alloc.kmalloc(64, core_id=4)
    with pytest.raises(ReproError, match="non-LWK CPU"):
        alloc.kfree(addr, core_id=0)
    # the object survives the failed free
    assert alloc.live_objects() == 1


def test_foreign_free_extension():
    params, heap, alloc = make_alloc()
    alloc.foreign_free_enabled = True
    addr, _ = alloc.kmalloc(64, core_id=4)
    cost = alloc.kfree(addr, core_id=0)      # a Linux CPU
    assert cost == params.mem.foreign_free_cost
    assert cost > params.mem.kfree_cost
    assert alloc.foreign_frees == 1
    assert alloc.live_objects() == 0


def test_double_kfree_rejected():
    params, heap, alloc = make_alloc()
    addr, _ = alloc.kmalloc(64, core_id=4)
    alloc.kfree(addr, core_id=4)
    with pytest.raises(ReproError):
        alloc.kfree(addr, core_id=4)
