"""Tests for the co-operative tick-less scheduler."""

import pytest

from repro.errors import ReproError
from repro.kernels.base import Task
from repro.mckernel.scheduler import CoopScheduler


class _FakeKernel:
    name = "mckernel"


def make_task(name):
    return Task(name, _FakeKernel(), -1)


def test_enqueue_least_loaded():
    sched = CoopScheduler([0, 1])
    a, b, c = make_task("a"), make_task("b"), make_task("c")
    assert sched.enqueue(a) == 0
    assert sched.enqueue(b) == 1
    assert sched.enqueue(c) in (0, 1)
    assert sched.load(0) + sched.load(1) == 3


def test_explicit_core_placement():
    sched = CoopScheduler([0, 1, 2])
    t = make_task("t")
    assert sched.enqueue(t, core_id=2) == 2
    assert sched.current(2) is t


def test_unknown_core_rejected():
    sched = CoopScheduler([0])
    with pytest.raises(ReproError):
        sched.enqueue(make_task("t"), core_id=9)


def test_yield_rotates_run_queue():
    sched = CoopScheduler([0])
    a, b = make_task("a"), make_task("b")
    sched.enqueue(a, 0)
    sched.enqueue(b, 0)
    assert sched.current(0) is a
    assert sched.yield_cpu(0) is b
    assert sched.yield_cpu(0) is a


def test_yield_on_empty_core():
    sched = CoopScheduler([0])
    assert sched.yield_cpu(0) is None


def test_dequeue():
    sched = CoopScheduler([0])
    t = make_task("t")
    sched.enqueue(t, 0)
    sched.dequeue(t)
    assert sched.current(0) is None
    with pytest.raises(ReproError):
        sched.dequeue(t)


def test_no_cores_rejected():
    with pytest.raises(ReproError):
        CoopScheduler([])


def test_tickless_invariant():
    assert CoopScheduler([0]).is_tickless
