"""MPI layer tests: world init, p2p semantics, collective correctness
(values really flow through the simulated network) and stats accounting."""

import pytest

from repro.config import ALL_CONFIGS, OSConfig
from repro.experiments import build_machine
from repro.mpi import MpiWorld, collectives
from repro.mpi.p2p import wait, waitall
from repro.units import KiB, MiB


def run_world(cfg, n_nodes, ranks_per_node, rank_main, params=None):
    machine = build_machine(n_nodes, cfg, params=params)
    world = MpiWorld.build(machine, ranks_per_node)
    results = world.launch(rank_main)
    return machine, world, results


def test_world_init_assigns_addresses():
    def main(rank):
        return rank.endpoint.addr
        yield  # pragma: no cover

    machine, world, addrs = run_world(OSConfig.LINUX, 2, 2, main)
    assert len(set(addrs)) == 4
    assert world.size == 4


def test_p2p_send_recv_payload():
    def main(rank):
        if rank.rank == 0:
            yield from rank.send(1, "hello", 32 * KiB, payload="the-data")
            return None
        req = yield from rank.recv(0, "hello", 32 * KiB)
        return req.payload

    _, _, results = run_world(OSConfig.LINUX, 2, 1, main)
    assert results[1] == "the-data"


def test_isend_irecv_wait():
    def main(rank):
        if rank.rank == 0:
            reqs = []
            for i in range(4):
                r = yield from rank.isend(1, ("m", i), 8 * KiB, payload=i)
                reqs.append(r)
            yield from waitall(rank, reqs)
            return None
        got = []
        for i in range(4):
            req = rank.irecv(0, ("m", i), 8 * KiB)
            yield from wait(rank, req)
            got.append(req.payload)
        return got

    _, _, results = run_world(OSConfig.LINUX, 2, 1, main)
    assert results[1] == [0, 1, 2, 3]


def test_rendezvous_p2p_across_configs():
    for cfg in ALL_CONFIGS:
        def main(rank):
            if rank.rank == 0:
                yield from rank.send(1, "big", 2 * MiB, payload="big-data")
                return None
            req = yield from rank.recv(0, "big", 2 * MiB)
            return (req.nbytes, req.payload)

        _, _, results = run_world(cfg, 2, 1, main)
        assert results[1] == (2 * MiB, "big-data"), cfg


@pytest.mark.parametrize("n_ranks", [2, 3, 4, 7, 8])
def test_allreduce_sums_correctly(n_ranks):
    def main(rank):
        value = rank.rank + 1
        result = yield from collectives.allreduce(rank, 8 * KiB, value)
        return result

    _, _, results = run_world(OSConfig.LINUX, 1, n_ranks, main)
    expected = sum(range(1, n_ranks + 1))
    assert all(r == expected for r in results)


@pytest.mark.parametrize("root", [0, 2])
def test_bcast_delivers_root_value(root):
    def main(rank):
        value = "payload" if rank.rank == root else None
        got = yield from collectives.bcast(rank, 16 * KiB, root=root,
                                           payload=value)
        return got

    _, _, results = run_world(OSConfig.LINUX, 2, 2, main)
    assert all(r == "payload" for r in results)


def test_reduce_to_root():
    def main(rank):
        return (yield from collectives.reduce(rank, 4 * KiB, rank.rank))

    _, _, results = run_world(OSConfig.LINUX, 1, 5, main)
    assert results[0] == sum(range(5))
    assert all(r is None for r in results[1:])


def test_allgather_collects_everyone():
    def main(rank):
        vals = yield from collectives.allgather(rank, 1 * KiB,
                                                f"r{rank.rank}")
        return vals

    _, _, results = run_world(OSConfig.LINUX, 2, 2, main)
    for vals in results:
        assert vals == ["r0", "r1", "r2", "r3"]


def test_alltoallv_routes_payloads():
    def main(rank):
        payloads = [f"{rank.rank}->{d}" for d in range(rank.size)]
        sizes = [1 * KiB * (d + 1) for d in range(rank.size)]
        got = yield from collectives.alltoallv(rank, sizes, payloads)
        return got

    _, _, results = run_world(OSConfig.LINUX, 1, 4, main)
    for me, got in enumerate(results):
        for src in range(4):
            assert got[src] == f"{src}->{me}"


def test_scan_inclusive_prefix():
    def main(rank):
        return (yield from collectives.scan(rank, 1 * KiB, rank.rank + 1))

    _, _, results = run_world(OSConfig.LINUX, 1, 6, main)
    assert results == [sum(range(1, i + 2)) for i in range(6)]


def test_barrier_synchronizes():
    arrivals = {}

    def main(rank):
        # rank 0 arrives late; nobody may leave before it arrives
        if rank.rank == 0:
            yield from rank.compute(1e-3)
        t_enter = rank.sim.now
        yield from collectives.barrier(rank)
        arrivals[rank.rank] = (t_enter, rank.sim.now)
        return None

    _, _, _ = run_world(OSConfig.MCKERNEL, 1, 4, main)
    slowest_entry = max(t for t, _ in arrivals.values())
    assert all(leave >= slowest_entry for _, leave in arrivals.values())


def test_cart_create_coordinates():
    def main(rank):
        return (yield from collectives.cart_create(rank, (2, 2)))

    _, _, results = run_world(OSConfig.LINUX, 1, 4, main)
    assert results == [[0, 0], [0, 1], [1, 0], [1, 1]]


def test_cart_create_wrong_dims_rejected():
    def main(rank):
        yield from collectives.cart_create(rank, (3, 2))

    machine = build_machine(1, OSConfig.LINUX)
    world = MpiWorld.build(machine, 4)
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        world.launch(main)


def test_stats_report_collectives_not_internals():
    def main(rank):
        yield from collectives.allreduce(rank, 8 * KiB, 1.0)
        yield from collectives.barrier(rank)
        return None

    _, world, _ = run_world(OSConfig.LINUX, 1, 4, main)
    stats = world.aggregate_stats()
    assert stats.time_in("Allreduce") > 0
    assert stats.time_in("Barrier") > 0
    assert stats.time_in("Isend") == 0      # suppressed inside collectives
    assert stats.time_in("Init") > 0
    assert stats.total_runtime > 0


def test_wait_time_dominates_for_delayed_sender():
    def main(rank):
        if rank.rank == 0:
            yield from rank.compute(5e-3)
            yield from rank.send(1, "late", 1 * KiB)
            return None
        req = rank.irecv(0, "late", 1 * KiB)
        yield from wait(rank, req)
        return None

    _, world, _ = run_world(OSConfig.MCKERNEL, 2, 1, main)
    stats = world.aggregate_stats()
    assert stats.time_in("Wait") >= 5e-3 * 0.9


def test_mpi_init_costs_ordered_by_config():
    """Init(HFI) > Init(McKernel) > Init(Linux) — the Table 1 pattern."""
    init_times = {}
    for cfg in ALL_CONFIGS:
        def main(rank):
            return None
            yield  # pragma: no cover

        _, world, _ = run_world(cfg, 1, 4, main)
        init_times[cfg] = world.aggregate_stats().time_in("Init")
    assert init_times[OSConfig.MCKERNEL] > init_times[OSConfig.LINUX]
    assert (init_times[OSConfig.MCKERNEL_HFI]
            > init_times[OSConfig.MCKERNEL])
