"""Tests for persistent communication (MPI_Send_init/Start/Request_free)."""

import pytest

from repro.config import OSConfig
from repro.errors import ReproError
from repro.experiments import build_machine
from repro.mpi import MpiWorld
from repro.units import KiB


def run_world(rank_main, n_nodes=2, ranks_per_node=1,
              cfg=OSConfig.LINUX):
    machine = build_machine(n_nodes, cfg)
    world = MpiWorld.build(machine, ranks_per_node)
    results = world.launch(rank_main)
    return world, results


def test_persistent_channel_delivers_repeatedly():
    def main(rank):
        if rank.rank == 0:
            chan = rank.send_init(1, "ring", 8 * KiB)
            for _ in range(3):
                yield from chan.start()
                yield from chan.wait()
            chan.free()
            return None
        chan = rank.recv_init(0, "ring", 8 * KiB)
        got = []
        for _ in range(3):
            req = yield from chan.start()
            yield from chan.wait()
            got.append(req.nbytes)
        chan.free()
        return got

    _, results = run_world(main)
    assert results[1] == [8 * KiB] * 3


def test_start_records_stats_not_isend():
    def main(rank):
        peer = 1 - rank.rank
        send = rank.send_init(peer, "x", 4 * KiB)
        recv = rank.recv_init(peer, "x", 4 * KiB)
        yield from recv.start()
        yield from send.start()
        yield from send.wait()
        yield from recv.wait()
        send.free()
        recv.free()
        return None

    world, _ = run_world(main)
    stats = world.aggregate_stats()
    assert stats.time_in("Start") > 0
    assert stats.time_in("Wait") > 0
    assert stats.calls_to("Request_free") == 4
    assert stats.time_in("Isend") == 0      # folded into Start


def test_start_after_free_rejected():
    def main(rank):
        if rank.rank == 1:
            return None
            yield  # pragma: no cover
        chan = rank.send_init(1, "x", 1 * KiB)
        chan.free()
        yield from chan.start()

    machine = build_machine(2, OSConfig.LINUX)
    world = MpiWorld.build(machine, 1)
    with pytest.raises(ReproError, match="freed"):
        world.launch(main)


def test_double_start_without_wait_rejected():
    def main(rank):
        if rank.rank == 1:
            req = rank.irecv(0, None, 8 * KiB)
            return None
            yield  # pragma: no cover
        chan = rank.send_init(1, "x", 256 * KiB)   # rendezvous: stays active
        yield from chan.start()
        yield from chan.start()

    machine = build_machine(2, OSConfig.LINUX)
    world = MpiWorld.build(machine, 1)
    with pytest.raises(ReproError, match="active"):
        world.launch(main)


def test_wait_without_start_rejected():
    def main(rank):
        chan = rank.send_init((rank.rank + 1) % rank.size, "x", 1 * KiB)
        yield from chan.wait()

    machine = build_machine(2, OSConfig.LINUX)
    world = MpiWorld.build(machine, 1)
    with pytest.raises(ReproError, match="no started instance"):
        world.launch(main)


def test_double_free_rejected():
    machine = build_machine(1, OSConfig.LINUX)
    world = MpiWorld.build(machine, 2)

    def main(rank):
        chan = rank.send_init((rank.rank + 1) % 2, "x", 1 * KiB)
        chan.free()
        chan.free()
        return None
        yield  # pragma: no cover

    with pytest.raises(ReproError, match="double"):
        world.launch(main)
