"""Unit tests for the I_MPI_STATS-style profile accumulator."""

import pytest

from repro.mpi.stats import MpiStats


def test_record_and_totals():
    s = MpiStats()
    s.record("Wait", 1.0)
    s.record("Wait", 2.0)
    s.record("Barrier", 3.0)
    assert s.time_in("Wait") == pytest.approx(3.0)
    assert s.calls_to("Wait") == 2
    assert s.total_mpi_time == pytest.approx(6.0)


def test_context_suppression():
    """Inside a collective, point-to-point records are suppressed."""
    s = MpiStats()
    s.push("Allreduce")
    s.record("Isend", 1.0)
    s.record("Recv", 1.0)
    s.pop()
    s.record("Allreduce", 5.0)
    assert s.time_in("Isend") == 0.0
    assert s.time_in("Allreduce") == pytest.approx(5.0)


def test_nested_contexts():
    s = MpiStats()
    s.push("Cart_create")
    s.push("Allgather")
    s.record("Isend", 1.0)
    s.pop()
    s.record("Allgather", 2.0)   # still inside Cart_create: suppressed
    s.pop()
    s.record("Cart_create", 9.0)
    assert s.time_in("Allgather") == 0.0
    assert s.time_in("Cart_create") == pytest.approx(9.0)


def test_top_rows_and_percentages():
    s = MpiStats()
    s.record("Wait", 6.0)
    s.record("Barrier", 3.0)
    s.record("Init", 1.0)
    s.add_runtime(50.0)
    rows = s.top(2)
    assert [r.call for r in rows] == ["Wait", "Barrier"]
    assert rows[0].pct_mpi == pytest.approx(60.0)
    assert rows[0].pct_runtime == pytest.approx(12.0)


def test_merge():
    a, b = MpiStats(), MpiStats()
    a.record("Wait", 1.0)
    b.record("Wait", 2.0)
    b.record("Bcast", 4.0)
    b.add_runtime(10.0)
    a.merge(b)
    assert a.time_in("Wait") == pytest.approx(3.0)
    assert a.time_in("Bcast") == pytest.approx(4.0)
    assert a.total_runtime == pytest.approx(10.0)


def test_render():
    s = MpiStats()
    s.record("Wait", 1.5)
    s.add_runtime(10.0)
    text = s.render(label="test")
    assert "Wait" in text and "Call (MPI_)" in text


def test_empty_stats():
    s = MpiStats()
    assert s.top() == []
    assert s.total_mpi_time == 0.0
