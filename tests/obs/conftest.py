"""Shared traced runs for the observability tests.

A traced fig4 regeneration is the suite's workhorse fixture; it is
module-expensive (three OS configs, two sizes), so it runs once per
session and every structural test reads from the same collector.
"""

import pytest

from repro.config import enable_tracing
from repro.experiments import run_fig4
from repro.obs import SpanCollector
from repro.units import KiB, MiB

#: one PIO-range and one rendezvous-range size — enough for every
#: protocol branch the tests assert on
TRACE_SIZES = (16 * KiB, 4 * MiB)


@pytest.fixture(scope="session")
def traced_fig4():
    """(collector, Fig4Result) for one traced smoke regeneration."""
    collector = SpanCollector()
    enable_tracing(collector)
    try:
        result = run_fig4(sizes=TRACE_SIZES, repetitions=1)
    finally:
        enable_tracing(None)
    collector.finalize()
    return collector, result
