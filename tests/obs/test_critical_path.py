"""Structural assertions on the traced fig4 causal graph.

These pin the acceptance properties of the issue: the PicoDriver fast
path carries no syscall-offload hop, the Linux/McKernel paths do (and
their SDMA descriptors average PAGE_SIZE), and the critical-path walk
recovers the expected wire-protocol segments for a 4MB message.
"""

import pytest

from repro.config import ALL_CONFIGS, OSConfig
from repro.obs import (breakdown_by_category, critical_path,
                       message_completion, render_breakdown)
from repro.units import MiB, PAGE_SIZE


def _desc_sizes(collector, label):
    """nbytes of every expected-receive SDMA descriptor under a label."""
    return [s.args["nbytes"] for s in
            collector.find(name="sdma.desc", track_prefix=f"{label}/")
            if s.args.get("kind") == "expected"]


def test_every_config_completes_a_4mb_message(traced_fig4):
    collector, _ = traced_fig4
    for config in ALL_CONFIGS:
        target = message_completion(collector, config.label,
                                    nbytes=4 * MiB)
        assert target is not None, f"no 4MB completion for {config.label}"
        segments = critical_path(collector, target)
        assert len(segments) >= 10
        cats = {seg.span.cat for seg in segments}
        # the wire protocol is visible end to end
        assert {"psm", "wire", "pio", "sdma"} <= cats
        # time is conserved: segments tile [start of first, completion]
        assert segments[-1].t1 == pytest.approx(target.end)
        for a, b in zip(segments, segments[1:]):
            assert a.t1 == pytest.approx(b.t0)


def test_offload_hop_only_on_plain_mckernel(traced_fig4):
    """The paper's central claim, read off the trace: syscall offload
    sits on McKernel's critical path and PicoDriver removes it."""
    collector, _ = traced_fig4
    cats_by_label = {}
    for config in ALL_CONFIGS:
        target = message_completion(collector, config.label,
                                    nbytes=4 * MiB)
        segments = critical_path(collector, target)
        cats_by_label[config] = {seg.span.cat for seg in segments}
    assert "offload" in cats_by_label[OSConfig.MCKERNEL]
    assert "offload" not in cats_by_label[OSConfig.MCKERNEL_HFI]
    assert "offload" not in cats_by_label[OSConfig.LINUX]
    assert "fastpath" in cats_by_label[OSConfig.MCKERNEL_HFI]
    # ... and writev — the data-path syscall — never offloads under the
    # PicoDriver, on or off the critical path (setup calls like open/
    # mmap and unclaimed ioctls still do)
    hfi_prefix = f"{OSConfig.MCKERNEL_HFI.label}/"
    offloaded = {s.name for s in collector.find(cat="offload",
                                                track_prefix=hfi_prefix)}
    assert not offloaded & {"ikc.offload.writev", "ikc.serve.writev"}
    assert collector.find(name="pico.writev",
                          track_prefix=hfi_prefix)
    # the same syscalls DO offload on plain McKernel
    mck_offloaded = {s.name for s in collector.find(
        cat="offload", track_prefix=f"{OSConfig.MCKERNEL.label}/")}
    assert "ikc.offload.writev" in mck_offloaded


def test_descriptor_sizes_match_the_submission_path(traced_fig4):
    """Linux-driver submissions chop at PAGE_SIZE; the PicoDriver walks
    pinned LWK spans and submits far larger descriptors (section 3.4)."""
    collector, _ = traced_fig4
    for config in (OSConfig.LINUX, OSConfig.MCKERNEL):
        sizes = _desc_sizes(collector, config.label)
        assert sizes, f"no expected-receive descriptors for {config.label}"
        assert sum(sizes) / len(sizes) == pytest.approx(PAGE_SIZE)
    pico_sizes = _desc_sizes(collector, OSConfig.MCKERNEL_HFI.label)
    assert pico_sizes
    assert sum(pico_sizes) / len(pico_sizes) > 2 * PAGE_SIZE


def test_breakdown_render_and_categories(traced_fig4):
    collector, _ = traced_fig4
    for config in ALL_CONFIGS:
        text = render_breakdown(collector, config.label)
        assert "critical path" in text and config.label in text
        assert "per-category:" in text
        target = message_completion(collector, config.label)
        by_cat = breakdown_by_category(critical_path(collector, target))
        assert by_cat
        total = target.end - critical_path(collector, target)[0].t0
        assert sum(by_cat.values()) == pytest.approx(total)


def test_fastpath_beats_offload_on_the_same_message(traced_fig4):
    """Per-segment latencies reproduce Figure 4's ordering at 4MB."""
    collector, result = traced_fig4
    assert result.ratio(OSConfig.MCKERNEL_HFI, 4 * MiB) > 1.0
    durations = {}
    for config in ALL_CONFIGS:
        target = message_completion(collector, config.label,
                                    nbytes=4 * MiB)
        segments = critical_path(collector, target)
        durations[config] = segments[-1].t1 - segments[0].t0
    assert durations[OSConfig.MCKERNEL_HFI] < durations[OSConfig.MCKERNEL]
