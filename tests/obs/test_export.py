"""Chrome Trace Event export: schema shape, round-trip, flow identity."""

import json

from repro.obs import SpanCollector, chrome_trace_events, write_chrome_trace


def _small_collector():
    c = SpanCollector()
    a = c.begin_span("lwk.writev", "node0/lwk", cat="syscall",
                     args={"task": "rank0"})
    b = c.begin_span("pico.writev", "node0/lwk", cat="fastpath")
    c.end_span(b)
    c.end_span(a)
    wire = c.complete_span("fabric.wire", "Linux/fabric", 1.0, 2.0,
                           cat="wire", flow_from=b)
    c.instant_span("psm.rx_expected", "node1/lwk", cat="psm",
                   flow_from=wire)
    return c


def test_export_event_schema(traced_fig4):
    collector, _ = traced_fig4
    events = chrome_trace_events(collector)
    assert events
    for evt in events:
        assert evt["ph"] in ("X", "s", "f", "M")
        assert isinstance(evt["pid"], int) and isinstance(evt["tid"], int)
        if evt["ph"] == "M":
            assert evt["name"] in ("process_name", "thread_name")
            assert "name" in evt["args"]
        else:
            assert isinstance(evt["ts"], (int, float))
        if evt["ph"] == "X":
            assert evt["dur"] >= 0
            assert evt["name"] and evt["cat"]
        if evt["ph"] == "f":
            assert evt["bp"] == "e"


def test_flow_ids_globally_unique_and_paired(traced_fig4):
    """Every flow id appears on exactly one start and one finish event,
    across all nodes and machines of the whole traced run."""
    collector, _ = traced_fig4
    events = chrome_trace_events(collector)
    starts = [e["id"] for e in events if e["ph"] == "s"]
    finishes = [e["id"] for e in events if e["ph"] == "f"]
    assert starts, "traced run exported no flow events"
    assert len(starts) == len(set(starts))
    assert len(finishes) == len(set(finishes))
    assert set(starts) == set(finishes)


def test_tracks_map_to_one_pid_tid_each(traced_fig4):
    """One Chrome track (pid, tid) per node/kernel/SDMA-engine track."""
    collector, _ = traced_fig4
    events = chrome_trace_events(collector)
    named = {}
    for evt in events:
        if evt["ph"] == "M" and evt["name"] == "thread_name":
            named[(evt["pid"], evt["tid"])] = evt["args"]["name"]
    tracks = {s.track for s in collector.spans}
    assert len(named) == len(tracks)
    # every duration event lands on a named track
    for evt in events:
        if evt["ph"] == "X":
            assert (evt["pid"], evt["tid"]) in named


def test_round_trip_through_json_file(tmp_path):
    c = _small_collector()
    path = tmp_path / "trace.json"
    write_chrome_trace(c, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ns"
    events = loaded["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in xs} == {"lwk.writev", "pico.writev",
                                      "fabric.wire", "psm.rx_expected"}
    wire = next(e for e in xs if e["name"] == "fabric.wire")
    assert wire["ts"] == 1.0e6 and wire["dur"] == 1.0e6
    assert len([e for e in events if e["ph"] == "s"]) == 2


def test_non_json_args_are_stringified(tmp_path):
    c = SpanCollector()
    s = c.begin_span("x", "t", args={"obj": object(), "n": 3})
    c.end_span(s)
    path = tmp_path / "t.json"
    write_chrome_trace(c, str(path))   # must not raise on repr-only args
    loaded = json.loads(path.read_text())
    args = next(e for e in loaded["traceEvents"]
                if e["ph"] == "X")["args"]
    assert args["n"] == 3 and isinstance(args["obj"], str)
