"""Span-backed KernelProfile equals the tracer-counter profile."""

import pytest

from repro.config import OSConfig, enable_tracing
from repro.experiments import build_machine
from repro.obs import SpanCollector
from repro.profiling import profile_from_spans, profile_from_tracer


def _traced_micro_run(os_config):
    """One offload-heavy micro workload with tracing on."""
    collector = SpanCollector()
    enable_tracing(collector)
    try:
        machine = build_machine(1, os_config)
        task = machine.spawn_rank(0, 0)

        def body():
            fd = yield from task.syscall("open", "/dev/hfi1_0")
            va = yield from task.syscall("mmap", 1 << 20)
            yield from task.syscall("munmap", va, 1 << 20)
            yield from task.syscall("close", fd)

        machine.sim.run(until=machine.sim.process(body()))
    finally:
        enable_tracing(None)
    collector.finalize()
    return collector, machine


def _assert_profiles_equal(from_spans, from_tracer):
    assert set(from_spans.times) == set(from_tracer.times)
    for name, t in from_tracer.times.items():
        assert from_spans.times[name] == pytest.approx(t, rel=1e-12)
    assert from_spans.dominant() == from_tracer.dominant()


def test_span_profile_equals_tracer_profile_linux():
    """On Linux there is one kernel and one tracer; the span-backed
    profile must equal the tracer-counter one to the bit."""
    collector, machine = _traced_micro_run(OSConfig.LINUX)
    _assert_profiles_equal(profile_from_spans(collector),
                           profile_from_tracer(machine.tracer))


def test_span_profile_equals_tracer_profile_mckernel():
    """On the multikernel each kernel accounts into its own tracer; the
    track prefix selects the matching span subset: ``machine.tracer`` is
    the LWK's (lwk.* spans), the proxied Linux side (including the
    shadow-unmap of Figure 9) accounts into the Linux kernel's tracer
    and shows up as linux.* spans on the linux track."""
    collector, machine = _traced_micro_run(OSConfig.MCKERNEL)
    _assert_profiles_equal(
        profile_from_spans(collector,
                           track_prefix="McKernel/node0/lwk"),
        profile_from_tracer(machine.tracer))
    linux_tracer = machine.nodes[0].linux.tracer
    _assert_profiles_equal(
        profile_from_spans(collector,
                           track_prefix="McKernel/node0/linux"),
        profile_from_tracer(linux_tracer))
    assert "munmap_shadow" in profile_from_spans(
        collector, track_prefix="McKernel/node0/linux").times


def test_track_prefix_narrows_to_one_kernel():
    collector, machine = _traced_micro_run(OSConfig.MCKERNEL)
    lwk_names = {s.name for s in collector.spans if s.cat == "syscall"
                 and s.track.endswith("/lwk")}
    assert lwk_names, "no LWK syscall spans recorded"
    lwk_only = profile_from_spans(collector,
                                  track_prefix="McKernel/node0/lwk")
    assert lwk_only.times
    whole = profile_from_spans(collector)
    assert lwk_only.total <= whole.total
