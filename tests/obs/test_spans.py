"""Span/collector unit behavior plus the disabled-identity guarantee."""

import pytest

from repro.config import TRACE, enable_tracing
from repro.experiments import run_fig4
from repro.obs import SpanCollector
from repro.units import KiB

SIZES = (16 * KiB, 256 * KiB)


# --- collector unit behavior -------------------------------------------------

def test_nesting_parents_and_stack():
    c = SpanCollector()
    outer = c.begin_span("outer", "n0/lwk")
    inner = c.begin_span("inner", "n0/lwk")
    assert inner.parent == outer.sid
    assert c.current().name == "inner"
    c.end_span(inner)
    assert c.current().name == "outer"
    c.end_span(outer)
    assert c.current() is None


def test_detached_span_takes_parent_but_not_stack():
    c = SpanCollector()
    outer = c.begin_span("outer", "n0/lwk")
    det = c.begin_span("desc", "n0/sdma0", detached=True)
    assert det.parent == outer.sid
    assert c.current() is outer      # detached spans never own the stack
    c.end_span(det)
    c.end_span(outer)


def test_instant_and_complete_spans():
    c = SpanCollector()
    inst = c.instant_span("irq", "n0/irq", args={"n": 1})
    assert inst.start == inst.end and inst.duration == 0.0
    comp = c.complete_span("wire", "fab", 1.0, 3.5, flow_from=inst)
    assert (comp.start, comp.end) == (1.0, 3.5)
    assert c.flows == [(1, inst.sid, comp.sid)]


def test_flow_from_none_is_dropped():
    c = SpanCollector()
    a = c.begin_span("a", "t", flow_from=None)
    c.end_span(a)
    assert c.flows == []


def test_end_span_merges_args_and_find_filters():
    c = SpanCollector()
    s = c.begin_span("x", "n0/lwk", cat="psm", args={"a": 1})
    c.end_span(s, args={"b": 2})
    assert s.args == {"a": 1, "b": 2}
    assert c.find(cat="psm") == [s]
    assert c.find(name="x", track_prefix="n0/") == [s]
    assert c.find(track_prefix="n1/") == []


def test_finalize_closes_dangling_spans():
    c = SpanCollector()
    s = c.begin_span("leaked", "t")
    assert s.end is None
    c.finalize()
    assert s.end is not None
    assert c.current() is None


# --- the identity guarantees of the TRACE gate -------------------------------

def test_installed_but_disabled_collector_stays_empty():
    """PD011's runtime contract: gates skip every emission when off."""
    idle = SpanCollector()
    TRACE.collector = idle
    TRACE.enabled = False
    try:
        run_fig4(sizes=SIZES, repetitions=1)
    finally:
        enable_tracing(None)
    assert idle.spans == [] and idle.flows == []


def test_tracing_never_perturbs_the_simulation():
    """Spans add no simulation events and no RNG draws, so fig4 is
    bit-identical with tracing off, installed-but-off, and fully on."""
    baseline = run_fig4(sizes=SIZES, repetitions=1)

    collector = SpanCollector()
    enable_tracing(collector)
    try:
        traced = run_fig4(sizes=SIZES, repetitions=1)
    finally:
        enable_tracing(None)
    assert collector.spans, "traced run recorded nothing"
    assert traced.series == baseline.series
    for cfg, series in baseline.series.items():
        for size, bw in series.items():
            assert traced.series[cfg][size] == pytest.approx(bw, rel=0,
                                                             abs=0)
