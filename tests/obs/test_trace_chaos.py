"""Tracing composed with fault injection: recovery becomes visible."""

from repro.config import OSConfig, enable_tracing
from repro.experiments.chaos import run_chaos
from repro.obs import SpanCollector


def test_chaos_run_shows_recovery_spans():
    """A faulted sweep leaves retransmit and fast-path-fallback marks in
    the trace, on top of the counters the chaos report is built from."""
    collector = SpanCollector()
    enable_tracing(collector)
    try:
        result = run_chaos(smoke=True, configs=(OSConfig.MCKERNEL_HFI,))
    finally:
        enable_tracing(None)
    collector.finalize()
    assert result.violations == []
    recovery = collector.find(cat="recovery")
    names = {s.name for s in recovery}
    assert "psm.retransmit" in names
    assert "pico.fallback" in names
    # the marks carry enough context to aggregate by failure mode
    kinds = {s.args.get("kind") for s in recovery
             if s.name == "psm.retransmit"}
    assert kinds
    fallbacks = [s for s in recovery if s.name == "pico.fallback"]
    assert all(s.args.get("syscall") for s in fallbacks)
    # recovery totals in the trace match the chaos counters
    faulted = [c for c in result.cells if c.rate > 0
               and c.os_config is OSConfig.MCKERNEL_HFI]
    counted = sum(c.counters.get("pico.fallbacks", 0) for c in faulted)
    assert counted == len(fallbacks)
