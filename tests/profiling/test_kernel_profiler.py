"""Tests for the kernel profiler, including micro-run integration."""

import pytest

from repro.config import OSConfig
from repro.experiments import build_machine
from repro.profiling import KernelProfile, profile_from_tracer
from repro.profiling.kernel_profiler import profile_from_mapping
from repro.sim import Tracer


def test_profile_shares_and_dominant():
    p = KernelProfile(times={"writev": 3.0, "ioctl": 6.0, "mmap": 1.0})
    assert p.total == pytest.approx(10.0)
    assert p.share("ioctl") == pytest.approx(0.6)
    assert p.dominant() == "ioctl"
    shares = p.shares()
    assert list(shares)[0] == "ioctl"   # sorted descending


def test_empty_profile():
    p = KernelProfile(times={})
    assert p.total == 0.0
    assert p.dominant() is None
    assert p.share("writev") == 0.0


def test_ratio_to():
    a = KernelProfile(times={"writev": 1.0})
    b = KernelProfile(times={"writev": 4.0})
    assert a.ratio_to(b) == pytest.approx(0.25)


def test_profile_from_tracer_skips_counters():
    t = Tracer()
    t.record("syscall.writev", 2.0)
    t.record("syscall.ioctl", 1.0)
    t.count("syscall.writev.calls", 5)
    t.record("mpi.Wait", 9.0)
    p = profile_from_tracer(t)
    assert set(p.times) == {"writev", "ioctl"}
    assert p.times["writev"] == pytest.approx(2.0)


def test_profile_from_micro_run():
    """The detailed simulator's syscall accounting feeds the profiler."""
    machine = build_machine(1, OSConfig.MCKERNEL)
    task = machine.spawn_rank(0, 0)

    def body():
        fd = yield from task.syscall("open", "/dev/hfi1_0")
        va = yield from task.syscall("mmap", 1 << 20)
        yield from task.syscall("munmap", va, 1 << 20)
        yield from task.syscall("close", fd)

    machine.sim.run(until=machine.sim.process(body()))
    profile = profile_from_tracer(machine.tracer)
    assert {"open", "mmap", "munmap", "close"} <= set(profile.times)
    assert profile.total > 0
    assert "munmap()" in profile.render("test")


def test_profile_from_mapping():
    p = profile_from_mapping({"munmap": 5.0, "writev": 1.0})
    assert p.dominant() == "munmap"
