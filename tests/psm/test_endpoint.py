"""PSM endpoint unit tests: protocol selection, error paths, progress."""

import pytest

from repro.config import OSConfig
from repro.errors import ReproError
from repro.experiments import build_machine
from repro.psm import Endpoint, TagMatcher
from repro.units import KiB, MiB


def make_pair(cfg=OSConfig.LINUX):
    machine = build_machine(2, cfg)
    sim = machine.sim
    t0, t1 = machine.spawn_rank(0, 0, 0), machine.spawn_rank(1, 0, 1)
    ep0 = Endpoint(sim, machine.params, machine.nodes[0].node.hfi, t0,
                   tracer=machine.tracer)
    ep1 = Endpoint(sim, machine.params, machine.nodes[1].node.hfi, t1,
                   tracer=machine.tracer)
    return machine, (t0, ep0), (t1, ep1)


def open_both(machine, a, b):
    (t0, ep0), (t1, ep1) = a, b
    bufs = {}

    def opener(task, ep, key):
        yield from ep.open()
        bufs[key] = yield from task.syscall("mmap", 8 * MiB)

    p0 = machine.sim.process(opener(t0, ep0, 0))
    p1 = machine.sim.process(opener(t1, ep1, 1))
    machine.sim.run(until=p0)
    machine.sim.run(until=p1)
    return bufs


def test_send_before_open_rejected():
    machine, a, b = make_pair()

    def body():
        yield from a[1].mq_isend((1, 0), "t", 0, 1 * KiB)

    proc = machine.sim.process(body())
    machine.sim.run()
    assert isinstance(proc.exception, ReproError)


def test_protocol_selection_by_size():
    machine, a, b = make_pair()
    bufs = open_both(machine, a, b)
    (t0, ep0), (t1, ep1) = a, b
    params = machine.params

    def body():
        req1 = ep1.mq_irecv(TagMatcher(tag="pio"), (bufs[1], 8 * MiB))
        req2 = ep1.mq_irecv(TagMatcher(tag="eager"), (bufs[1], 8 * MiB))
        req3 = ep1.mq_irecv(TagMatcher(tag="exp"), (bufs[1], 8 * MiB))
        yield from ep0.mq_send(ep1.addr, "pio", bufs[0], 8 * KiB)
        yield from ep0.mq_send(ep1.addr, "eager", bufs[0], 128 * KiB)
        yield from ep0.mq_send(ep1.addr, "exp", bufs[0], 1 * MiB)
        yield req3.event

    machine.sim.run(until=machine.sim.process(body()))
    machine.sim.run()
    assert machine.tracer.get_count("psm.eager_sends") == 1
    assert machine.tracer.get_count("psm.eager_sdma_sends") == 1
    assert machine.tracer.get_count("psm.rndv_sends") == 1


def test_rendezvous_without_posted_buffer_fails():
    machine, a, b = make_pair()
    bufs = open_both(machine, a, b)
    (t0, ep0), (t1, ep1) = a, b

    def sender():
        yield from ep0.mq_isend(ep1.addr, "nobuf", bufs[0], 1 * MiB)

    machine.sim.process(sender())
    machine.sim.run()
    # RTS parked on the unexpected queue; posting without a buffer raises
    with pytest.raises(ReproError, match="buffer"):
        ep1.mq_irecv(TagMatcher(tag="nobuf"), None)


def test_rendezvous_with_too_small_buffer_fails():
    machine, a, b = make_pair()
    bufs = open_both(machine, a, b)
    (t0, ep0), (t1, ep1) = a, b

    def sender():
        yield from ep0.mq_isend(ep1.addr, "big", bufs[0], 2 * MiB)

    machine.sim.process(sender())
    machine.sim.run()
    with pytest.raises(ReproError, match="too small"):
        ep1.mq_irecv(TagMatcher(tag="big"), (bufs[1], 1 * MiB))


def test_unexpected_eager_delivered_on_late_post():
    machine, a, b = make_pair()
    bufs = open_both(machine, a, b)
    (t0, ep0), (t1, ep1) = a, b

    def sender():
        yield from ep0.mq_send(ep1.addr, "early", bufs[0], 16 * KiB,
                               payload="surprise")

    machine.sim.run(until=machine.sim.process(sender()))
    machine.sim.run()
    assert machine.tracer.get_count("psm.unexpected") == 1
    req = ep1.mq_irecv(TagMatcher(tag="early"), (bufs[1], 8 * MiB))
    machine.sim.run()
    assert req.done and req.payload == "surprise"


def test_source_matching_with_wildcards():
    machine, a, b = make_pair()
    bufs = open_both(machine, a, b)
    (t0, ep0), (t1, ep1) = a, b

    def sender():
        yield from ep0.mq_send(ep1.addr, "tagged", bufs[0], 4 * KiB,
                               payload="hello")

    wrong = ep1.mq_irecv(TagMatcher(source=(9, 9), tag="tagged"))
    anysrc = ep1.mq_irecv(TagMatcher(tag="tagged"))
    machine.sim.run(until=machine.sim.process(sender()))
    machine.sim.run()
    assert not wrong.done
    assert anysrc.done and anysrc.payload == "hello"


def test_close_requires_open():
    machine, a, b = make_pair()

    def body():
        yield from a[1].close()

    proc = machine.sim.process(body())
    machine.sim.run()
    assert isinstance(proc.exception, ReproError)


def test_progress_workers_drain_cleanly():
    machine, a, b = make_pair(OSConfig.MCKERNEL_HFI)
    bufs = open_both(machine, a, b)
    (t0, ep0), (t1, ep1) = a, b

    def body():
        req = ep1.mq_irecv(TagMatcher(tag="x"), (bufs[1], 8 * MiB))
        yield from ep0.mq_send(ep1.addr, "x", bufs[0], 4 * MiB)
        yield req.event

    machine.sim.run(until=machine.sim.process(body()))
    machine.sim.run()
    assert ep1.rx.backlog == 0 and ep0.tx.backlog == 0
    assert ep1.rx.failed == 0
    assert not ep0._send_flows and not ep1._recv_flows
