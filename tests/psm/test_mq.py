"""Tests for PSM matched-queue semantics."""

import pytest

from repro.psm.mq import MatchedQueue, MqRequest, TagMatcher, UnexpectedMessage
from repro.errors import ReproError
from repro.sim import Simulator


SRC_A = (0, 0)
SRC_B = (1, 3)


def test_exact_tag_matching():
    m = TagMatcher(source=SRC_A, tag="t1")
    assert m.matches(SRC_A, "t1")
    assert not m.matches(SRC_B, "t1")
    assert not m.matches(SRC_A, "t2")


def test_wildcard_matching():
    assert TagMatcher().matches(SRC_B, "anything")
    assert TagMatcher(tag="t").matches(SRC_A, "t")
    assert TagMatcher(source=SRC_A).matches(SRC_A, "x")


def test_posted_receive_matches_arrival_in_order():
    sim = Simulator()
    mq = MatchedQueue(sim)
    r1, _ = mq.post_recv(TagMatcher(tag="t"))
    r2, _ = mq.post_recv(TagMatcher(tag="t"))
    assert mq.match_arrival(SRC_A, "t") is r1
    assert mq.match_arrival(SRC_A, "t") is r2
    assert mq.match_arrival(SRC_A, "t") is None


def test_unexpected_messages_match_retroactively_in_order():
    sim = Simulator()
    mq = MatchedQueue(sim)
    mq.add_unexpected(UnexpectedMessage(SRC_A, "t", 10, payload="first"))
    mq.add_unexpected(UnexpectedMessage(SRC_A, "t", 20, payload="second"))
    req, msg = mq.post_recv(TagMatcher(tag="t"))
    assert msg.payload == "first"
    req2, msg2 = mq.post_recv(TagMatcher(tag="t"))
    assert msg2.payload == "second"
    _, none = mq.post_recv(TagMatcher(tag="t"))
    assert none is None


def test_unexpected_selected_by_matcher_not_order():
    sim = Simulator()
    mq = MatchedQueue(sim)
    mq.add_unexpected(UnexpectedMessage(SRC_A, "x", 1))
    mq.add_unexpected(UnexpectedMessage(SRC_B, "y", 2))
    req, msg = mq.post_recv(TagMatcher(tag="y"))
    assert msg.source == SRC_B
    assert mq.counts() == (0, 1)


def test_request_completion_event():
    sim = Simulator()
    req = MqRequest(sim, "recv", TagMatcher())
    assert not req.done
    req.complete(SRC_A, "t", 128, payload="p")
    assert req.done
    sim.run()
    assert req.event.value is req
    assert (req.source, req.tag, req.nbytes, req.payload) == \
        (SRC_A, "t", 128, "p")


def test_double_completion_rejected():
    sim = Simulator()
    req = MqRequest(sim, "recv", TagMatcher())
    req.complete(SRC_A, "t", 1)
    with pytest.raises(ReproError):
        req.complete(SRC_A, "t", 1)
