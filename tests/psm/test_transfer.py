"""Tests for rendezvous window math and flow state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.psm.transfer import (RecvFlow, Rts, SendFlow, window_count,
                                window_extent)
from repro.units import KiB


def test_window_count():
    assert window_count(1, 256 * KiB) == 1
    assert window_count(256 * KiB, 256 * KiB) == 1
    assert window_count(256 * KiB + 1, 256 * KiB) == 2
    assert window_count(4 * 1024 * KiB, 256 * KiB) == 16


def test_window_count_rejects_nonpositive():
    with pytest.raises(ReproError):
        window_count(0, 256 * KiB)


def test_window_extent():
    total, w = 600 * KiB, 256 * KiB
    assert window_extent(total, w, 0) == (0, 256 * KiB)
    assert window_extent(total, w, 1) == (256 * KiB, 256 * KiB)
    assert window_extent(total, w, 2) == (512 * KiB, 88 * KiB)
    with pytest.raises(ReproError):
        window_extent(total, w, 3)


@given(total=st.integers(1, 64 * 1024 * 1024),
       wsize=st.sampled_from([64 * KiB, 256 * KiB, 1024 * KiB]))
@settings(max_examples=100)
def test_windows_partition_the_message(total, wsize):
    n = window_count(total, wsize)
    extents = [window_extent(total, wsize, w) for w in range(n)]
    assert extents[0][0] == 0
    assert sum(ln for _, ln in extents) == total
    for (o1, l1), (o2, _) in zip(extents, extents[1:]):
        assert o1 + l1 == o2
    assert all(0 < ln <= wsize for _, ln in extents)


def test_send_flow_completion_accounting():
    flow = SendFlow(msg_id=("a", 0), buffer=0, total=512 * KiB, windows=2,
                    request=None)
    assert not flow.window_complete()
    assert flow.window_complete()
    with pytest.raises(ReproError):
        flow.window_complete()


def test_recv_flow_arrival_accounting():
    rts = Rts(("a", 0), (0, 0), "t", 512 * KiB)
    flow = RecvFlow(rts=rts, buffer=0, request=None, windows=2)
    assert not flow.all_arrived()
    flow.arrived = 2
    assert flow.all_arrived()
