"""Property tests pinning the reliability watchdogs' exponential
backoff: every retransmit of the eager/RTS/CTS daemons fires at the
geometric schedule ``retry_timeout * retry_backoff**k``, and an
exhausted budget surfaces the right typed error."""

from types import SimpleNamespace

import pytest

from repro.errors import DeviceTimeout, TransferCorrupt
from repro.psm.endpoint import Endpoint
from repro.sim import Event, Simulator, Tracer
from repro.units import USEC

PARAM_GRID = [(400 * USEC, 2.0, 6), (100 * USEC, 1.5, 4),
              (50 * USEC, 3.0, 3)]


def make_fake(retry_timeout, retry_backoff, max_retries):
    """A minimal endpoint stand-in recording retransmit timestamps, so
    the daemons run against a real clock but fake device/syscall
    layers."""
    sim = Simulator()
    sends = []

    def pio_send(pkt):
        sends.append(sim.now)
        return
        yield  # pragma: no cover - generator shape for ``yield from``

    def failing_writev(name, fd, iov):
        sends.append(sim.now)
        raise DeviceTimeout("device wedged")
        yield  # pragma: no cover - generator shape for ``yield from``

    fake = SimpleNamespace(
        sim=sim,
        tracer=Tracer(),
        fd=3,
        params=SimpleNamespace(psm=SimpleNamespace(
            retry_timeout=retry_timeout, retry_backoff=retry_backoff,
            max_retries=max_retries)),
        hfi=SimpleNamespace(pio_send=pio_send),
        task=SimpleNamespace(syscall=failing_writev),
        _pending_eager={}, _send_flows={}, _recv_flows={},
        failed_flows=[])
    fake._fail_recv_flow = lambda flow, exc: fake.failed_flows.append(
        (flow, exc))
    return sim, sends, fake


def geometric_schedule(retry_timeout, retry_backoff, n):
    """Cumulative fire times of ``n`` backoff sleeps."""
    times, t = [], 0.0
    for k in range(n):
        t += retry_timeout * retry_backoff ** k
        times.append(t)
    return times


@pytest.mark.parametrize("timeout,backoff,retries", PARAM_GRID)
def test_eager_watchdog_backoff_sequence_and_exhaustion(timeout, backoff,
                                                        retries):
    sim, sends, fake = make_fake(timeout, backoff, retries)
    req = SimpleNamespace(done=False, event=Event(sim))
    fake._pending_eager[7] = {"via": "pio", "pkt": object(), "req": req,
                              "tag": ("t", 7), "nbytes": 1024}
    sim.process(Endpoint._eager_watchdog(fake, 7))
    sim.run()
    assert sends == pytest.approx(
        geometric_schedule(timeout, backoff, retries))
    assert 7 not in fake._pending_eager
    assert isinstance(req.event.exception, DeviceTimeout)
    assert fake.tracer.counters["psm.send_failures"] == 1


def test_eager_watchdog_sdma_retry_survives_wedged_device():
    """A writev that itself DeviceTimeouts must not kill the backoff
    loop: every budgeted attempt still fires, then the typed error
    surfaces (the per-engine attribution satellite's counter)."""
    timeout, backoff, retries = PARAM_GRID[0]
    sim, sends, fake = make_fake(timeout, backoff, retries)
    req = SimpleNamespace(done=False, event=Event(sim))
    fake._pending_eager[9] = {"via": "sdma", "meta": {"kind": "eager"},
                              "buffer": 0x1000, "req": req,
                              "tag": ("t", 9), "nbytes": 96 * 1024}
    sim.process(Endpoint._eager_watchdog(fake, 9))
    sim.run()
    assert sends == pytest.approx(
        geometric_schedule(timeout, backoff, retries))
    assert fake.tracer.counters["psm.retransmit_timeouts"] == retries
    assert isinstance(req.event.exception, DeviceTimeout)


def test_eager_watchdog_stops_after_ack():
    timeout, backoff, retries = PARAM_GRID[0]
    sim, sends, fake = make_fake(timeout, backoff, retries)
    req = SimpleNamespace(done=False, event=Event(sim))
    fake._pending_eager[5] = {"via": "pio", "pkt": object(), "req": req,
                              "tag": ("t", 5), "nbytes": 1024}

    def acker():
        yield sim.timeout(timeout * 1.5)  # after the first retransmit
        fake._pending_eager.pop(5)

    sim.process(acker())
    sim.process(Endpoint._eager_watchdog(fake, 5))
    sim.run()
    assert len(sends) == 1
    assert req.event.exception is None and not req.event.triggered


@pytest.mark.parametrize("timeout,backoff,retries", PARAM_GRID)
def test_rts_watchdog_backoff_sequence_and_exhaustion(timeout, backoff,
                                                      retries):
    sim, sends, fake = make_fake(timeout, backoff, retries)
    flow = SimpleNamespace(cts_seen=False, finished=False, msg_id="m1",
                           request=SimpleNamespace(done=False,
                                                   event=Event(sim)))
    fake._send_flows["m1"] = flow
    sim.process(Endpoint._rts_watchdog(fake, flow, object()))
    sim.run()
    assert sends == pytest.approx(
        geometric_schedule(timeout, backoff, retries))
    assert "m1" not in fake._send_flows
    exc = flow.request.event.exception
    assert isinstance(exc, DeviceTimeout) and "RTS" in str(exc)


def test_rts_watchdog_stands_down_once_cts_arrives():
    timeout, backoff, retries = PARAM_GRID[0]
    sim, sends, fake = make_fake(timeout, backoff, retries)
    flow = SimpleNamespace(cts_seen=True, finished=False, msg_id="m1",
                           request=SimpleNamespace(done=False,
                                                   event=Event(sim)))
    fake._send_flows["m1"] = flow
    sim.process(Endpoint._rts_watchdog(fake, flow, object()))
    sim.run()
    assert sends == [] and not flow.request.event.triggered


@pytest.mark.parametrize("timeout,backoff,retries", PARAM_GRID)
def test_cts_watchdog_backoff_sequence_and_typed_timeout(timeout, backoff,
                                                         retries):
    sim, sends, fake = make_fake(timeout, backoff, retries)
    flow = SimpleNamespace(rts=SimpleNamespace(msg_id="m2"),
                           arrived_windows=set(), corrupt_seen=False)
    fake._recv_flows["m2"] = flow
    sim.process(Endpoint._cts_watchdog(fake, flow, 0, object()))
    sim.run()
    assert sends == pytest.approx(
        geometric_schedule(timeout, backoff, retries))
    assert len(fake.failed_flows) == 1
    _flow, exc = fake.failed_flows[0]
    assert isinstance(exc, DeviceTimeout)


def test_cts_watchdog_attributes_corruption():
    timeout, backoff, retries = PARAM_GRID[2]
    sim, _sends, fake = make_fake(timeout, backoff, retries)
    flow = SimpleNamespace(rts=SimpleNamespace(msg_id="m3"),
                           arrived_windows=set(), corrupt_seen=True)
    fake._recv_flows["m3"] = flow
    sim.process(Endpoint._cts_watchdog(fake, flow, 1, object()))
    sim.run()
    _flow, exc = fake.failed_flows[0]
    assert isinstance(exc, TransferCorrupt)
