"""Unit tests for the discrete-event engine: clock, ordering, run modes."""

import pytest

from repro.sim import SimError, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_sets_value():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(42)
    sim.run()
    assert evt.processed and evt.ok and evt.value == 42


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimError):
        evt.succeed(2)
    with pytest.raises(SimError):
        evt.fail(RuntimeError("boom"))


def test_event_fail_raises_on_value_access():
    sim = Simulator()
    evt = sim.event()
    evt.fail(RuntimeError("boom"))
    sim.run()
    assert not evt.ok
    with pytest.raises(RuntimeError):
        _ = evt.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        _ = sim.event().value


def test_late_callback_runs_immediately():
    sim = Simulator()
    evt = sim.timeout(1.0, value="x")
    sim.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).add_callback(lambda e: fired.append(1))
    sim.timeout(5.0).add_callback(lambda e: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1] and sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=3.0)
    with pytest.raises(SimError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()
    assert sim.run(until=sim.timeout(1.5, value="done")) == "done"
    assert sim.now == 1.5


def test_run_until_untriggerable_event_raises_deadlock():
    sim = Simulator()
    orphan = sim.event()  # never triggered
    with pytest.raises(SimError, match="deadlock"):
        sim.run(until=orphan)


def test_step_on_empty_queue_rejected():
    with pytest.raises(SimError):
        Simulator().step()


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_callbacks_see_current_sim_time():
    sim = Simulator()
    stamps = []
    sim.timeout(1.0).add_callback(lambda e: stamps.append(sim.now))
    sim.timeout(2.0).add_callback(lambda e: stamps.append(sim.now))
    sim.run()
    assert stamps == [1.0, 2.0]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    order = []

    def chain(e):
        order.append(sim.now)
        if sim.now < 3.0:
            sim.timeout(1.0).add_callback(chain)

    sim.timeout(1.0).add_callback(chain)
    sim.run()
    assert order == [1.0, 2.0, 3.0]
