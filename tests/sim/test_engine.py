"""Unit tests for the discrete-event engine: clock, ordering, run modes."""

import pytest

from repro.sim import SimError, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.timeout(1.0).add_callback(lambda e, i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_sets_value():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(42)
    sim.run()
    assert evt.processed and evt.ok and evt.value == 42


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimError):
        evt.succeed(2)
    with pytest.raises(SimError):
        evt.fail(RuntimeError("boom"))


def test_event_fail_raises_on_value_access():
    sim = Simulator()
    evt = sim.event()
    evt.fail(RuntimeError("boom"))
    sim.run()
    assert not evt.ok
    with pytest.raises(RuntimeError):
        _ = evt.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        _ = sim.event().value


def test_late_callback_runs_immediately():
    sim = Simulator()
    evt = sim.timeout(1.0, value="x")
    sim.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).add_callback(lambda e: fired.append(1))
    sim.timeout(5.0).add_callback(lambda e: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1] and sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=3.0)
    with pytest.raises(SimError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()
    assert sim.run(until=sim.timeout(1.5, value="done")) == "done"
    assert sim.now == 1.5


def test_run_until_untriggerable_event_raises_deadlock():
    sim = Simulator()
    orphan = sim.event()  # never triggered
    with pytest.raises(SimError, match="deadlock"):
        sim.run(until=orphan)


def test_step_on_empty_queue_rejected():
    with pytest.raises(SimError):
        Simulator().step()


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_callbacks_see_current_sim_time():
    sim = Simulator()
    stamps = []
    sim.timeout(1.0).add_callback(lambda e: stamps.append(sim.now))
    sim.timeout(2.0).add_callback(lambda e: stamps.append(sim.now))
    sim.run()
    assert stamps == [1.0, 2.0]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    order = []

    def chain(e):
        order.append(sim.now)
        if sim.now < 3.0:
            sim.timeout(1.0).add_callback(chain)

    sim.timeout(1.0).add_callback(chain)
    sim.run()
    assert order == [1.0, 2.0, 3.0]


# --- the pinned tie-break policy and the controlled-scheduler hook -----------

class RecordingScheduler:
    """Minimal stand-in for the PicoCheck scheduler: records choice
    points, answers with a configured pick (default 0 = FIFO)."""

    def __init__(self, picks=None):
        self.picks = dict(picks or {})
        self.choice_points = []
        self.steps = 0

    def choose_ready(self, when, ready):
        index = len(self.choice_points)
        self.choice_points.append((when, len(ready)))
        return self.picks.get(index, 0)

    def on_step_begin(self, when, seq, event):
        self.steps += 1

    def on_step_end(self):
        pass

    def on_process_resumed(self, process):
        pass


def test_tie_break_pinned_fifo_even_when_scheduled_from_callbacks():
    """The tie-break contract: same-time events fire in insertion order
    even when an event is inserted *from a callback* running at that
    same timestamp — it queues behind everything already scheduled."""
    sim = Simulator()
    order = []

    def first(evt):
        order.append("a")
        sim.timeout(0.0).add_callback(lambda e: order.append("c"))

    sim.timeout(1.0).add_callback(first)
    sim.timeout(1.0).add_callback(lambda e: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def _three_at_once(sim, order):
    for name in ("a", "b", "c"):
        sim.timeout(1.0).add_callback(lambda e, n=name: order.append(n))
    sim.timeout(2.0).add_callback(lambda e: order.append("late"))


def test_scheduler_surfaces_multi_ready_sets_as_choice_points():
    sim = Simulator()
    order = []
    _three_at_once(sim, order)
    sched = RecordingScheduler()
    sim.scheduler = sched
    sim.run()
    # step 1 sees [a, b, c]; b and c are re-queued so step 2 sees
    # [b, c]; singletons (c alone, the late event) are not choices
    assert sched.choice_points == [(1.0, 3), (1.0, 2)]
    assert sched.steps == 4
    assert order == ["a", "b", "c", "late"]


def test_scheduler_default_pick_matches_uncontrolled_run():
    runs = []
    for controlled in (False, True):
        sim = Simulator()
        order = []
        _three_at_once(sim, order)
        if controlled:
            sim.scheduler = RecordingScheduler()
        sim.run()
        runs.append(order)
    assert runs[0] == runs[1]


def test_scheduler_pick_overrides_fifo_and_preserves_rest():
    sim = Simulator()
    order = []
    _three_at_once(sim, order)
    sim.scheduler = RecordingScheduler(picks={0: 2})
    sim.run()
    # promoting c must not reorder a and b among themselves
    assert order == ["c", "a", "b", "late"]


def test_scheduler_out_of_range_pick_rejected():
    sim = Simulator()
    order = []
    _three_at_once(sim, order)
    sim.scheduler = RecordingScheduler(picks={0: 7})
    with pytest.raises(SimError):
        sim.run()


def test_monitor_installation_rebinds_the_hot_dispatch():
    """The flattened hot loop: with no monitors installed, ``step`` and
    ``timeout`` are the fast variants (zero per-event branches);
    installing a scheduler or wait monitor swaps in the instrumented
    variant, and uninstalling swaps the fast one back."""
    sim = Simulator()
    assert sim.step.__func__ is Simulator._step_fast
    assert sim.timeout.__func__ is Simulator._timeout_fast

    sim.scheduler = RecordingScheduler()
    assert sim.step.__func__ is Simulator._step_controlled
    sim.scheduler = None
    assert sim.step.__func__ is Simulator._step_fast

    class Monitor:
        seen = 0.0

        def on_timed_wait(self, delay):
            self.seen += delay

    monitor = Monitor()
    sim.wait_monitor = monitor
    assert sim.timeout.__func__ is Simulator._timeout_observed
    sim.timeout(2.5)
    assert monitor.seen == 2.5
    sim.wait_monitor = None
    assert sim.timeout.__func__ is Simulator._timeout_fast
    sim.timeout(1.0)
    assert monitor.seen == 2.5          # uninstalled monitors see nothing


def test_dispatch_variants_run_the_same_schedule():
    """Fast and instrumented stepping produce the identical event
    order (the rebinding is an optimization, not a semantic switch)."""
    runs = []
    for instrumented in (False, True):
        sim = Simulator()
        order = []
        _three_at_once(sim, order)
        if instrumented:
            sim.wait_monitor = type("M", (), {
                "on_timed_wait": lambda self, d: None})()
        sim.run()
        runs.append(order)
    assert runs[0] == runs[1]
