"""Unit tests for generator processes and condition events."""

import pytest

from repro.sim import AllOf, AnyOf, SimError, Simulator
from repro.sim.process import Interrupt


def test_process_consumes_timeouts():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        return "done"

    proc = sim.process(body())
    result = sim.run(until=proc)
    assert result == "done"
    assert sim.now == 3.0


def test_process_receives_event_values():
    sim = Simulator()

    def body():
        got = yield sim.timeout(1.0, value=7)
        return got * 2

    assert sim.run(until=sim.process(body())) == 14


def test_processes_compose():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "child-value"

    def parent():
        value = yield sim.process(child())
        return value.upper()

    assert sim.run(until=sim.process(parent())) == "CHILD-VALUE"


def test_failed_event_raises_inside_process():
    sim = Simulator()

    def body():
        evt = sim.event()
        sim.timeout(1.0).add_callback(lambda e: evt.fail(ValueError("bad")))
        try:
            yield evt
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run(until=sim.process(body())) == "caught bad"


def test_unhandled_process_exception_fails_process_event():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("kernel panic")

    proc = sim.process(body())
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.exception, RuntimeError)


def test_child_failure_propagates_to_parent():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise RuntimeError("injected fault")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError:
            return "recovered"

    assert sim.run(until=sim.process(parent())) == "recovered"


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def body():
        yield 42  # not an Event

    proc = sim.process(body())
    sim.run()
    assert isinstance(proc.exception, SimError)


def test_non_generator_body_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_wakes_process_early():
    sim = Simulator()

    def body():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", sim.now, intr.cause)

    proc = sim.process(body())
    sim.timeout(5.0).add_callback(lambda e: proc.interrupt("preempted"))
    assert sim.run(until=proc) == ("interrupted", 5.0, "preempted")


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)

    proc = sim.process(body())
    sim.run()
    with pytest.raises(SimError):
        proc.interrupt()


def test_allof_waits_for_every_event():
    sim = Simulator()

    def body():
        t1, t2 = sim.timeout(1.0, "a"), sim.timeout(3.0, "b")
        values = yield AllOf(sim, [t1, t2])
        return (sim.now, sorted(values.values()))

    assert sim.run(until=sim.process(body())) == (3.0, ["a", "b"])


def test_anyof_returns_on_first_event():
    sim = Simulator()

    def body():
        t1, t2 = sim.timeout(1.0, "fast"), sim.timeout(3.0, "slow")
        values = yield AnyOf(sim, [t1, t2])
        return (sim.now, list(values.values()))

    assert sim.run(until=sim.process(body())) == (1.0, ["fast"])


def test_empty_allof_triggers_immediately():
    sim = Simulator()

    def body():
        yield AllOf(sim, [])
        return sim.now

    assert sim.run(until=sim.process(body())) == 0.0


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.5))
    sim.run()
    # at t=3.0 b's timeout was scheduled first (at t=1.5, vs a's at t=2.0)
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"),
                   (3.0, "a"), (4.5, "b")]
