"""Property-based tests of the engine's ordering and resource invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).add_callback(lambda e, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=30))
def test_clock_never_goes_backwards_in_processes(delays):
    sim = Simulator()
    stamps = []

    def body():
        for d in delays:
            before = sim.now
            yield sim.timeout(d)
            assert sim.now >= before
            stamps.append(sim.now)

    sim.run(until=sim.process(body()))
    assert stamps == sorted(stamps)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    services=st.lists(st.floats(min_value=0.01, max_value=10.0,
                                allow_nan=False), min_size=1, max_size=40),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity_and_serves_everyone(capacity, services):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    served = []

    def job(idx, service):
        with res.request() as req:
            yield req
            assert res.count <= capacity
            yield sim.timeout(service)
        served.append(idx)

    for i, s in enumerate(services):
        sim.process(job(i, s))
    sim.run()
    assert sorted(served) == list(range(len(services)))
    assert res.count == 0 and res.queued == 0


@given(
    capacity=st.integers(min_value=1, max_value=4),
    n_jobs=st.integers(min_value=1, max_value=30),
    service=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)
@settings(max_examples=50)
def test_equal_jobs_finish_in_fifo_batches(capacity, n_jobs, service):
    """With identical service times the FIFO closed form used by the macro
    cluster model (job i finishes at (i//c + 1)*s) must hold exactly."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    finishes = {}

    def job(idx):
        with res.request() as req:
            yield req
            yield sim.timeout(service)
        finishes[idx] = sim.now

    for i in range(n_jobs):
        sim.process(job(i))
    sim.run()
    for i in range(n_jobs):
        assert abs(finishes[i] - (i // capacity + 1) * service) < 1e-9
