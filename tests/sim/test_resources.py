"""Unit tests for FIFO resources and stores — the contention primitives."""

import pytest

from repro.sim import Resource, SimError, Simulator, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.queued == 1


def test_release_grants_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    res.release(first)
    assert second.triggered and not third.triggered
    res.release(second)
    assert third.triggered


def test_release_unknown_request_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = res.request()
    res.release(granted)
    with pytest.raises(SimError):
        res.release(granted)


def test_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.request()
    queued = res.request()
    res.release(queued)  # cancel while still queued
    assert res.queued == 0


def test_zero_capacity_rejected():
    with pytest.raises(SimError):
        Resource(Simulator(), capacity=0)


def test_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(2.0)
        return sim.now

    def waiter():
        with res.request() as req:
            yield req
        return sim.now

    sim.process(holder())
    w = sim.process(waiter())
    assert sim.run(until=w) == 2.0


def test_four_cpu_queueing_matches_fifo_formula():
    """k simultaneous jobs of service s on c servers: job i starts at
    floor(i/c)*s — the closed form the macro cluster model uses."""
    sim = Simulator()
    cpus = Resource(sim, capacity=4)
    service, jobs = 2.0, 10
    finish_times = []

    def job():
        with cpus.request() as req:
            yield req
            yield sim.timeout(service)
        finish_times.append(sim.now)

    for _ in range(jobs):
        sim.process(job())
    sim.run()
    expected = sorted((i // 4 + 1) * service for i in range(jobs))
    assert finish_times == expected


def test_utilization_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield sim.timeout(4.0)
        yield sim.timeout(4.0)

    sim.process(holder())
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert store.get().value == "a"
    assert store.get().value == "b"
    assert len(store) == 0


def test_store_blocking_get():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    proc = sim.process(consumer())
    sim.timeout(3.0).add_callback(lambda e: store.put("late"))
    assert sim.run(until=proc) == (3.0, "late")


def test_store_getters_served_in_order():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer(name):
        item = yield store.get()
        results.append((name, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield sim.timeout(1.0)
        store.put("x")
        store.put("y")

    sim.process(producer())
    sim.run()
    assert results == [("first", "x"), ("second", "y")]
