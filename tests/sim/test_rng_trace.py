"""Unit tests for named RNG streams and the tracer."""

import pytest

from repro.sim import RngFactory, Tracer


def test_same_key_same_stream():
    f = RngFactory(7)
    a = f.stream("noise", 3).random(5)
    b = f.stream("noise", 3).random(5)
    assert (a == b).all()


def test_different_keys_differ():
    f = RngFactory(7)
    a = f.stream("noise", 3).random(5)
    b = f.stream("noise", 4).random(5)
    assert (a != b).any()


def test_different_seeds_differ():
    a = RngFactory(1).stream("x").random(5)
    b = RngFactory(2).stream("x").random(5)
    assert (a != b).any()


def test_spawn_is_disjoint_from_parent():
    f = RngFactory(7)
    child = f.spawn("node", 0)
    a = f.stream("x").random(5)
    b = child.stream("x").random(5)
    assert (a != b).any()


def test_tracer_counts_and_records():
    t = Tracer()
    t.count("irq")
    t.count("irq", 2)
    t.record("syscall.writev", 1.0)
    t.record("syscall.writev", 3.0)
    assert t.get_count("irq") == 3
    assert t.get_total("syscall.writev") == 4.0
    assert t.get_mean("syscall.writev") == 2.0
    acc = t.accs["syscall.writev"]
    assert (acc.min, acc.max, acc.count) == (1.0, 3.0, 2)


def test_tracer_disabled_is_noop():
    t = Tracer(enabled=False)
    t.count("x")
    t.record("y", 1.0)
    assert t.get_count("x") == 0 and t.get_total("y") == 0.0


def test_tracer_totals_prefix_filter():
    t = Tracer()
    t.record("syscall.writev", 1.0)
    t.record("syscall.ioctl", 2.0)
    t.record("mpi.Wait", 5.0)
    assert t.totals("syscall.") == {"syscall.writev": 1.0, "syscall.ioctl": 2.0}


def test_tracer_merge_folds_statistics():
    a, b = Tracer(), Tracer()
    a.record("x", 1.0)
    b.record("x", 3.0)
    b.count("n", 2)
    a.merge(b)
    assert a.get_total("x") == 4.0
    assert a.accs["x"].max == 3.0
    assert a.get_count("n") == 2


def test_tracer_series_kept_only_when_enabled():
    t = Tracer(keep_series=True)
    t.record("bw", 10.0, t=1.0)
    t.record("bw", 20.0, t=2.0)
    assert t.series["bw"] == [(1.0, 10.0), (2.0, 20.0)]
    t2 = Tracer(keep_series=False)
    t2.record("bw", 10.0, t=1.0)
    assert "bw" not in t2.series


def test_tracer_report_shape():
    t = Tracer()
    t.count("c")
    t.record("a", 2.0)
    rep = t.report()
    assert rep["c"]["count"] == 1.0
    assert rep["a"]["total"] == pytest.approx(2.0)
