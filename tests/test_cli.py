"""Tests for the ``python -m repro`` command line."""


from repro.__main__ import COMMANDS, main


def test_help(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "fig4" in out and "table1" in out
    assert "tune" in out


def test_unknown_command(capsys):
    assert main(["figx"]) == 2
    assert "unknown command" in capsys.readouterr().out


def test_all_commands_registered():
    assert set(COMMANDS) == {"fig4", "fig5", "fig6", "fig7", "fig8",
                             "fig9", "table1", "sloc", "contention",
                             "projection", "report"}


def test_sloc_command(capsys):
    assert main(["sloc"]) == 0
    assert "Porting effort" in capsys.readouterr().out


def test_fig8_command(capsys):
    assert main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out and "writev()" in out


def test_dwarf_command_listing1(capsys):
    assert main(["dwarf", "hfi1", "sdma_state", "current_state",
                 "go_s99_running", "previous_state"]) == 0
    out = capsys.readouterr().out
    assert "char whole_struct[64];" in out
    assert "char padding1[48];" in out


def test_dwarf_command_versioned_module(capsys):
    assert main(["dwarf", "mlx5_ib:4.4-2.0.7", "mlx5_ib_mr", "lkey"]) == 0
    out = capsys.readouterr().out
    assert "mlx5_ib v4.4-2.0.7" in out


def test_dwarf_command_errors(capsys):
    assert main(["dwarf"]) == 2
    assert main(["dwarf", "nvme0", "foo", "bar"]) == 2
    out = capsys.readouterr().out
    assert "unknown module" in out
