"""Smoke tests: every shipped example runs to completion and prints its
headline content (guards against example rot)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py")
    assert "Linux" in out and "McKernel+HFI1" in out
    assert "GB/s" in out


@pytest.mark.slow
def test_driver_porting():
    out = run_example("driver_porting.py")
    assert "char whole_struct[64];" in out          # Listing 1
    assert "silent corruption" in out
    assert "LayoutError" in out and "DriverError" in out
    assert "S99_RUNNING" in out


@pytest.mark.slow
def test_umt_collapse():
    out = run_example("umt_collapse.py")
    assert "weak scaling" in out
    assert "MPI_Wait" in out
    assert "Figure 8" in out


@pytest.mark.slow
def test_custom_app():
    out = run_example("custom_app.py")
    assert "micro (detailed DES" in out
    assert "macro (cluster model)" in out


@pytest.mark.slow
def test_infiniband_memreg():
    out = run_example("infiniband_memreg.py")
    assert "ibv_reg_mr()" in out
    assert "MTT" in out
