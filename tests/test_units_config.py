"""Tests for the foundational helpers: units, config, params, errors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.config import ALL_CONFIGS, OSConfig
from repro.errors import PageFault
from repro.params import default_params


# --- units -------------------------------------------------------------------

def test_size_constants():
    assert units.KiB == 1024
    assert units.MiB == 1024 ** 2
    assert units.PAGE_SIZE == 4096
    assert units.LARGE_PAGE_SIZE == 2 * units.MiB


def test_pages_for():
    assert units.pages_for(0) == 0
    assert units.pages_for(1) == 1
    assert units.pages_for(4096) == 1
    assert units.pages_for(4097) == 2
    with pytest.raises(ValueError):
        units.pages_for(-1)


def test_alignment_helpers():
    assert units.align_down(4097, 4096) == 4096
    assert units.align_up(4097, 4096) == 8192
    assert units.align_up(8192, 4096) == 8192


@given(value=st.integers(0, 1 << 48), align=st.sampled_from([8, 4096, 1 << 21]))
def test_alignment_properties(value, align):
    down = units.align_down(value, align)
    up = units.align_up(value, align)
    assert down % align == 0 and up % align == 0
    assert down <= value <= up
    assert up - down in (0, align)


def test_fmt_size():
    assert units.fmt_size(8) == "8B"
    assert units.fmt_size(64 * units.KiB) == "64KB"
    assert units.fmt_size(4 * units.MiB) == "4MB"
    assert units.fmt_size(2 * units.GiB) == "2GB"


def test_fmt_time():
    assert units.fmt_time(2.0) == "2s"
    assert units.fmt_time(1.5e-3) == "1.5ms"
    assert units.fmt_time(3.2e-6) == "3.2us"
    assert units.fmt_time(5e-9) == "5ns"


def test_fmt_bandwidth():
    assert units.fmt_bandwidth(12.3e9) == "12300.0MB/s"


# --- config --------------------------------------------------------------------

def test_three_configurations():
    assert len(ALL_CONFIGS) == 3
    assert OSConfig.LINUX.label == "Linux"
    assert OSConfig.MCKERNEL_HFI.label == "McKernel+HFI1"


def test_config_properties():
    assert not OSConfig.LINUX.is_multikernel
    assert OSConfig.MCKERNEL.is_multikernel
    assert not OSConfig.MCKERNEL.has_picodriver
    assert OSConfig.MCKERNEL_HFI.has_picodriver
    assert OSConfig.LINUX.noisy_app_cores
    assert not OSConfig.MCKERNEL_HFI.noisy_app_cores


# --- params ---------------------------------------------------------------------

def test_default_params_deterministic_seed():
    assert default_params().seed == default_params().seed


def test_params_are_frozen():
    params = default_params()
    with pytest.raises(Exception):
        params.nic.link_bandwidth = 1.0


def test_with_overrides_replaces_sections():
    from dataclasses import replace
    params = default_params()
    tuned = params.with_overrides(
        nic=replace(params.nic, sdma_engines=8))
    assert tuned.nic.sdma_engines == 8
    assert params.nic.sdma_engines == 16        # original untouched
    assert tuned.syscall is params.syscall      # other sections shared


def test_paper_constants():
    """The constants the paper states explicitly."""
    p = default_params()
    assert p.nic.pio_threshold == 64 * units.KiB    # section 2.2.1
    assert p.nic.sdma_engines == 16                 # section 2.2.1
    assert p.nic.sdma_max_request == 10 * units.KiB  # section 3.4
    assert p.nic.linux_max_request == units.PAGE_SIZE  # section 3.4
    assert p.node.app_cores == 64 and p.node.os_cores == 4  # section 4.1
    assert p.node.total_cores == 68                 # KNL 7250
    assert p.node.numa_domains == 8                 # SNC-4 flat


def test_ikc_round_trip_is_sum_of_parts():
    ikc = default_params().ikc
    assert ikc.round_trip == pytest.approx(
        ikc.request_cost + ikc.ipi_cost + ikc.dispatch_cost
        + ikc.response_cost)


def test_noise_mean_fraction():
    noise = default_params().noise
    expected = (noise.tick_rate_hz * noise.tick_cost
                + noise.burst_rate_hz * noise.burst_log_median
                * math.exp(noise.burst_log_sigma ** 2 / 2))
    assert noise.mean_fraction == pytest.approx(expected)


# --- errors ----------------------------------------------------------------------

def test_pagefault_message():
    exc = PageFault("mckernel", 0xFFFF_8800_0000_1234, "driver pointer")
    assert "mckernel" in str(exc)
    assert "0xffff880000001234" in str(exc)
    assert "driver pointer" in str(exc)
    assert exc.addr == 0xFFFF_8800_0000_1234
