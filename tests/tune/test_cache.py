"""The resumable results cache: hits, misses, resume, and soft
recovery from damaged entries and stale code versions."""

import json

from repro.tune import CacheEntryError, ResultsCache, run_campaign
from repro.tune.cache import MAGIC, code_fingerprint, entry_key

POINT = (("a", 1), ("b", 2))


def test_entry_key_is_stable_and_discriminating():
    key = entry_key(POINT, 7, "synthetic", {"x": 1})
    assert key == entry_key(POINT, 7, "synthetic", {"x": 1})
    assert key != entry_key(POINT, 8, "synthetic", {"x": 1})
    assert key != entry_key(POINT, 7, "pingpong", {"x": 1})
    assert key != entry_key(POINT, 7, "synthetic", {"x": 2})


def test_code_fingerprint_is_cached_and_hexish():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 16
    int(fp, 16)


def test_put_get_and_hit_miss_counters(tmp_path):
    path = str(tmp_path / "c.jsonl")
    with ResultsCache(path) as cache:
        key = entry_key(POINT, 7, "synthetic", {})
        assert cache.get(key) is None
        cache.put(key, {"scalar": 1.5, "metrics": {}, "violations": []})
        assert cache.get(key)["scalar"] == 1.5
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1


def test_resume_reloads_entries_fresh_start_ignores_them(tmp_path):
    path = str(tmp_path / "c.jsonl")
    key = entry_key(POINT, 7, "synthetic", {})
    with ResultsCache(path) as cache:
        cache.put(key, {"scalar": 2.0, "metrics": {}, "violations": []})
    with ResultsCache(path, resume=True) as cache:
        assert cache.get(key)["scalar"] == 2.0
    with ResultsCache(path, resume=False) as cache:
        assert cache.get(key) is None


def test_campaign_resumes_without_re_evaluating(tmp_path):
    path = str(tmp_path / "c.jsonl")
    with ResultsCache(path) as cache:
        first = run_campaign("synthetic", budget=8, batch=4, seed=7,
                             cache=cache)
    assert (first.evaluations_run, first.cache_hits) == (8, 0)
    with ResultsCache(path, resume=True) as cache:
        second = run_campaign("synthetic", budget=8, batch=4, seed=7,
                              cache=cache)
    assert (second.evaluations_run, second.cache_hits) == (0, 8)
    assert [t.fitness for t in first.trials] \
        == [t.fitness for t in second.trials]
    assert all(t.cached for t in second.trials)


def test_damaged_entry_is_typed_and_re_evaluated(tmp_path):
    path = str(tmp_path / "c.jsonl")
    with ResultsCache(path) as cache:
        first = run_campaign("synthetic", budget=4, batch=4, seed=7,
                             cache=cache)
    lines = open(path).read().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]        # truncated JSON
    lines[2] = json.dumps({"key": "k", "fitness": {"scalar": "nope"}})
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    with ResultsCache(path, resume=True) as cache:
        assert len(cache.errors) == 2
        assert all(isinstance(e, CacheEntryError) for e in cache.errors)
        assert "re-evaluate" in str(cache.errors[0])
        second = run_campaign("synthetic", budget=4, batch=4, seed=7,
                              cache=cache)
    # the two surviving entries answer; the damaged ones re-run
    assert (second.evaluations_run, second.cache_hits) == (2, 2)
    assert [t.fitness for t in first.trials] \
        == [t.fitness for t in second.trials]


def test_stale_code_version_ignores_the_whole_file(tmp_path):
    path = str(tmp_path / "c.jsonl")
    with ResultsCache(path, fingerprint="aaaa") as cache:
        key = entry_key(POINT, 7, "synthetic", {})
        cache.put(key, {"scalar": 1.0, "metrics": {}, "violations": []})
    with ResultsCache(path, fingerprint="bbbb", resume=True) as cache:
        assert len(cache) == 0
        assert len(cache.errors) == 1
        assert "code version" in str(cache.errors[0])


def test_bad_magic_and_unreadable_header_fail_soft(tmp_path):
    bad_magic = str(tmp_path / "m.jsonl")
    with open(bad_magic, "w") as fh:
        fh.write(json.dumps({"magic": "other/9", "version": "x"}) + "\n")
    with ResultsCache(bad_magic, resume=True) as cache:
        assert len(cache) == 0 and "bad magic" in str(cache.errors[0])
    garbled = str(tmp_path / "g.jsonl")
    with open(garbled, "w") as fh:
        fh.write("{not json\n")
    with ResultsCache(garbled, resume=True) as cache:
        assert len(cache) == 0 and "header" in str(cache.errors[0])


def test_open_rewrites_damaged_lines_away(tmp_path):
    path = str(tmp_path / "c.jsonl")
    with ResultsCache(path, fingerprint="ffff") as cache:
        key = entry_key(POINT, 7, "synthetic", {})
        cache.put(key, {"scalar": 3.0, "metrics": {}, "violations": []})
    with open(path, "a") as fh:
        fh.write("garbage line\n")
    with ResultsCache(path, fingerprint="ffff", resume=True):
        pass
    lines = open(path).read().splitlines()
    assert json.loads(lines[0])["magic"] == MAGIC
    assert len(lines) == 2                      # header + the good entry
    assert json.loads(lines[1])["fitness"]["scalar"] == 3.0
