"""The gym-like environment: purity, probe bookkeeping, and the
disabled-identity contract (tuning off perturbs nothing)."""

import pytest

from repro.config import TUNE, OSConfig
from repro.tune import EnvConfig, EvalJob, Fitness, PicoEnv, evaluate_job
from repro.tune.env import EnvError
from repro.tune.space import default_space


def mid_point():
    space = default_space()
    point = {a.name: a.values[len(a.values) // 2] for a in space.axes}
    point["os_config"] = "mckernel_hfi"
    return point


def test_unknown_workload_is_a_typed_error():
    with pytest.raises(EnvError, match="unknown tune workload"):
        PicoEnv("hpl")


def test_invalid_point_is_rejected_before_simulation():
    env = PicoEnv("synthetic")
    with pytest.raises(Exception, match="misses axes"):
        env.evaluate({"sdma_engines": 4}, seed=1)


def test_synthetic_evaluation_is_pure():
    env = PicoEnv("synthetic")
    point = mid_point()
    a = env.evaluate(point, seed=11)
    b = env.evaluate(point, seed=11)
    assert a == b
    assert env.evaluate(point, seed=12) != a


def test_pingpong_evaluation_reports_the_curve_and_probe_counts():
    env = PicoEnv("pingpong", config=EnvConfig.smoke())
    fitness = env.evaluate(mid_point(), seed=42)
    sizes = EnvConfig.smoke().pingpong_sizes
    assert fitness.scalar == fitness.metric(f"bw_{max(sizes)}")
    assert fitness.metric("latency_small") > 0
    # the probe saw exactly one two-node machine being built
    assert fitness.metric("machines") == 1.0
    assert fitness.metric("nodes") == 2.0
    assert fitness.violations == ()


def test_probe_never_leaks_past_an_evaluation():
    env = PicoEnv("pingpong", config=EnvConfig.smoke())
    env.evaluate(mid_point(), seed=42)
    assert not TUNE.enabled and TUNE.probe is None


def test_probe_restored_even_when_the_workload_raises():
    env = PicoEnv("synthetic")
    env.space = None  # force a failure inside evaluate
    with pytest.raises(Exception):
        env.evaluate(mid_point(), seed=1)
    assert not TUNE.enabled and TUNE.probe is None


def test_disabled_identity_pingpong_is_bit_identical():
    """With no probe installed, a plain experiment run is bit-identical
    before and after a tune evaluation (the figures never move)."""
    from repro.apps.imb import PingPong
    from repro.experiments.common import build_machine

    def plain_run():
        machine = build_machine(2, OSConfig.MCKERNEL_HFI)
        return PingPong(machine, repetitions=1, warmup=1).run([16384])

    before = plain_run()
    PicoEnv("pingpong", config=EnvConfig.smoke()).evaluate(
        mid_point(), seed=42)
    assert plain_run() == before


def test_fitness_round_trips_through_dict_form():
    fitness = Fitness(scalar=2.5, metrics=(("a", 1.0), ("b", 2.0)),
                      violations=("late",))
    assert Fitness.from_dict(fitness.to_dict()) == fitness
    with pytest.raises(KeyError):
        fitness.metric("c")


def test_env_config_smoke_trims_the_sizes():
    smoke, full = EnvConfig.smoke(), EnvConfig()
    assert len(smoke.pingpong_sizes) < len(full.pingpong_sizes)
    assert smoke.pingpong_repetitions < full.pingpong_repetitions
    assert smoke.to_dict() != full.to_dict()


def test_evaluate_job_matches_a_direct_evaluation():
    space = default_space()
    point = mid_point()
    job = EvalJob(index=3, point=space.canonical(point), seed=9,
                  workload="synthetic", config=EnvConfig())
    index, fitness = evaluate_job(job)
    assert index == 3
    assert fitness == PicoEnv("synthetic").evaluate(point, seed=9)
