"""The report renderer, the BENCH_TUNE artifact, and ``repro tune``."""

import json
import os

from repro.tune import run_campaign
from repro.tune import report
from repro.tune.cli import cmd_tune
from repro.tune.cache import code_fingerprint


def campaign():
    return run_campaign("synthetic", budget=6, batch=3, seed=11)


def test_render_report_carries_trajectory_and_best_point():
    result = campaign()
    text = report.render_report(result)
    assert "workload=synthetic" in text and "best-so-far" in text
    assert f"best: trial {result.best.index}" in text
    assert "point.sdma_engines" in text
    assert text.count("\n") >= 6 + 5   # table rows + header/best block


def test_bench_payload_schema():
    result = campaign()
    payload = report.bench_payload(result, baselines=[{"name": "x", "value": 1}])
    assert payload["schema"] == report.SCHEMA
    assert payload["code_version"] == code_fingerprint()
    assert payload["campaign"]["workload"] == "synthetic"
    assert payload["trajectory"] == result.trajectory
    assert len(payload["scalars"]) == 6
    assert payload["best"]["scalar"] == result.best.fitness.scalar
    assert payload["baselines"][0]["name"] == "x"
    json.dumps(payload)  # must be JSON-serializable as-is


def test_cmd_tune_smoke_synthetic_writes_the_artifact(tmp_path, capsys):
    out = str(tmp_path / "BENCH_TUNE.json")
    cache = str(tmp_path / "cache" / "c.jsonl")
    argv = ["synthetic", "--smoke", "--budget", "6", "--workers", "1",
            "--seed", "3", "--out", out, "--cache", cache]
    assert cmd_tune(argv) == 0
    text = capsys.readouterr().out
    assert "PicoTune campaign" in text and "wrote" in text
    payload = json.load(open(out))
    assert payload["schema"] == report.SCHEMA
    assert payload["campaign"]["budget"] == 6
    assert os.path.exists(cache)
    # resume: the whole budget answers from the cache
    assert cmd_tune(argv + ["--resume"]) == 0
    resumed = json.load(open(out))
    assert resumed["campaign"]["cache_hits"] == 6
    assert resumed["campaign"]["evaluations_run"] == 0
    assert resumed["best"] == payload["best"]
    assert resumed["trajectory"] == payload["trajectory"]


def test_cmd_tune_rejects_bad_inputs(capsys):
    assert cmd_tune(["hpl"]) == 2
    assert cmd_tune(["synthetic", "--search", "annealing"]) == 2
    assert cmd_tune(["synthetic", "--budget"]) == 2
    assert cmd_tune(["synthetic", "--frobnicate"]) == 2
    out = capsys.readouterr().out
    assert "usage" in out and "unknown" in out


def test_main_dispatches_tune(tmp_path, capsys):
    from repro.__main__ import main
    out = str(tmp_path / "b.json")
    cache = str(tmp_path / "c.jsonl")
    assert main(["tune", "synthetic", "--budget", "2", "--batch", "2",
                 "--workers", "1", "--out", out, "--cache", cache]) == 0
    assert "PicoTune campaign" in capsys.readouterr().out
    assert main([]) == 0
    assert "tune" in capsys.readouterr().out
