"""The sharded runner: parallel output bit-identical to serial, and
campaign results invariant under the worker count."""

import pytest

from repro.tune import CampaignResult, Fitness, Trial, run_campaign
from repro.tune.runner import map_shards, trial_seed


def _square(x):
    """Top-level so the pool can pickle it."""
    return x * x


def test_map_shards_parallel_equals_serial():
    items = list(range(17))
    serial = map_shards(_square, items, workers=1)
    parallel = map_shards(_square, items, workers=4)
    assert serial == parallel == [x * x for x in items]


def test_map_shards_handles_trivial_inputs():
    assert map_shards(_square, [], workers=4) == []
    assert map_shards(_square, [3], workers=4) == [9]


def test_trial_seed_is_stable_and_distinct():
    seeds = [trial_seed(20180611, i) for i in range(8)]
    assert seeds == [trial_seed(20180611, i) for i in range(8)]
    assert len(set(seeds)) == 8
    assert trial_seed(1, 0) != trial_seed(2, 0)


@pytest.mark.parametrize("search", ["random", "evolution", "bayes"])
def test_campaign_is_invariant_under_workers(search):
    serial = run_campaign("synthetic", search=search, budget=10, batch=4,
                          seed=7, workers=1)
    parallel = run_campaign("synthetic", search=search, budget=10, batch=4,
                            seed=7, workers=3)
    assert [t.point for t in serial.trials] \
        == [t.point for t in parallel.trials]
    assert [t.fitness for t in serial.trials] \
        == [t.fitness for t in parallel.trials]
    assert [t.seed for t in serial.trials] \
        == [t.seed for t in parallel.trials]
    assert serial.best.point == parallel.best.point
    assert serial.trajectory == parallel.trajectory


def test_campaign_runs_exactly_the_budget():
    result = run_campaign("synthetic", budget=6, batch=4, seed=1)
    assert [t.index for t in result.trials] == list(range(6))
    assert result.evaluations_run == 6
    assert result.cache_hits == 0


def test_trajectory_is_monotone_best_so_far():
    result = run_campaign("synthetic", budget=8, batch=4, seed=2)
    traj = result.trajectory
    assert traj == sorted(traj)
    assert traj[-1] == result.best.fitness.scalar


def test_best_of_empty_campaign_is_an_error():
    empty = CampaignResult(workload="synthetic", search="random",
                           budget=0, seed=0, workers=1)
    with pytest.raises(ValueError):
        empty.best


def test_best_breaks_ties_toward_the_earliest_trial():
    fit = Fitness(scalar=1.0)
    result = CampaignResult(workload="synthetic", search="random",
                            budget=2, seed=0, workers=1,
                            trials=[Trial(0, (), 0, fit, False),
                                    Trial(1, (), 0, fit, False)])
    assert result.best.index == 0
