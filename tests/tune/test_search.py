"""Search strategies: seed determinism, validity, and learning."""

import pytest

from repro.tune import (Fitness, PicoEnv, SearchError, default_space,
                        make_search)
from repro.tune.search import STRATEGIES

ALL = sorted(STRATEGIES)


def drive(name, seed, rounds=4, batch=4):
    """Run propose/observe rounds against the synthetic landscape and
    return every proposed point (canonical form)."""
    space = default_space()
    env = PicoEnv("synthetic")
    strategy = make_search(name, space, seed)
    seen = []
    for r in range(rounds):
        points = strategy.propose(batch)
        results = [(p, env.evaluate(p, seed=1000 + r)) for p in points]
        strategy.observe(results)
        seen.extend(space.canonical(p) for p in points)
    return seen


@pytest.mark.parametrize("name", ALL)
def test_same_seed_reproduces_the_proposal_sequence(name):
    assert drive(name, 7) == drive(name, 7)


@pytest.mark.parametrize("name", ["random", "evolution", "bayes"])
def test_different_seeds_explore_differently(name):
    assert drive(name, 7) != drive(name, 8)


@pytest.mark.parametrize("name", ALL)
def test_proposals_are_valid_points(name):
    space = default_space()
    for canon in drive(name, 3, rounds=2):
        space.validate(dict(canon))


def test_grid_sweeps_row_major_and_cycles():
    space = default_space()
    strategy = make_search("grid", space, 0)
    first = strategy.propose(3)
    expected = []
    it = space.iter_points()
    for _ in range(3):
        expected.append(next(it))
    assert first == expected
    # a budget beyond the space wraps around instead of exhausting
    fourth = strategy.propose(1)
    strategy.propose(space.size - 1)
    assert strategy.propose(1) == fourth


def test_evolution_archive_feeds_the_elite():
    space = default_space()
    strategy = make_search("evolution", space, 3, population=4)
    points = strategy.propose(4)
    # seed the archive with one standout point
    best = points[0]
    strategy.observe([(best, Fitness(scalar=100.0))]
                     + [(p, Fitness(scalar=0.0)) for p in points[1:]])
    elite = strategy._elite()
    assert space.encode(best) in elite


def test_bayes_prefers_observed_good_values():
    space = default_space()
    strategy = make_search("bayes", space, 5, explore=0.0)
    good = {a.name: a.values[0] for a in space.axes}
    strategy.observe([(good, Fitness(scalar=10.0))])
    assert strategy._score(space.encode(good)) > 0.0


def test_unknown_strategy_is_a_typed_error():
    with pytest.raises(SearchError, match="unknown search"):
        make_search("annealing", default_space(), 0)
