"""The typed design space: validation, the three point forms, and
materialization into (Params, OSConfig) designs."""

import pytest

from repro.config import OSConfig
from repro.params import default_params
from repro.sim import RngFactory
from repro.tune import Axis, ParamSpace, SpaceError, default_space


def small_space():
    return ParamSpace((
        Axis("a", (1, 2, 3), "nic", "sdma_engines"),
        Axis("b", (10, 20), "psm", "prefetch_windows"),
    ))


def test_axis_rejects_empty_and_duplicate_values():
    with pytest.raises(SpaceError):
        Axis("x", (), "nic", "sdma_engines")
    with pytest.raises(SpaceError):
        Axis("x", (1, 1), "nic", "sdma_engines")


def test_space_rejects_no_axes_and_duplicate_names():
    with pytest.raises(SpaceError):
        ParamSpace(())
    ax = Axis("a", (1,), "nic", "sdma_engines")
    with pytest.raises(SpaceError):
        ParamSpace((ax, ax))


def test_size_and_iteration_agree():
    space = small_space()
    points = list(space.iter_points())
    assert space.size == 6 == len(points)
    # row-major: the last axis varies fastest
    assert points[0] == {"a": 1, "b": 10}
    assert points[1] == {"a": 1, "b": 20}
    # every point is distinct and valid
    assert len({space.canonical(p) for p in points}) == 6


def test_validate_flags_unknown_missing_and_bad_values():
    space = small_space()
    with pytest.raises(SpaceError, match="unknown axes"):
        space.validate({"a": 1, "b": 10, "c": 5})
    with pytest.raises(SpaceError, match="misses axes"):
        space.validate({"a": 1})
    with pytest.raises(SpaceError, match="no value"):
        space.validate({"a": 7, "b": 10})


def test_encode_decode_round_trip():
    space = small_space()
    for point in space.iter_points():
        assert space.decode(space.encode(point)) == point
    with pytest.raises(SpaceError, match="length"):
        space.decode((0,))
    with pytest.raises(SpaceError, match="out of"):
        space.decode((0, 5))


def test_canonical_is_axis_ordered_and_hashable():
    space = small_space()
    canon = space.canonical({"b": 20, "a": 3})
    assert canon == (("a", 3), ("b", 20))
    assert hash(canon)  # cache-key form must be hashable


def test_random_point_is_deterministic_and_valid():
    space = default_space()
    draws = [space.random_point(RngFactory(5).stream("t"))
             for _ in range(3)]
    again = [space.random_point(RngFactory(5).stream("t"))
             for _ in range(3)]
    assert draws == again
    for p in draws:
        space.validate(p)


def test_materialize_overrides_the_named_sections():
    space = default_space()
    point = {a.name: a.values[0] for a in space.axes}
    point.update(sdma_engines=16, window_size=512 * 1024,
                 os_config="linux")
    design = space.materialize(point, seed=99)
    assert design.os_config is OSConfig.LINUX
    assert design.params.nic.sdma_engines == 16
    assert design.params.psm.window_size == 512 * 1024
    assert design.params.seed == 99
    # untouched sections come through from the base calibration
    assert design.params.ikc == default_params().ikc


def test_materialize_leaves_the_base_params_untouched():
    space = default_space()
    base = default_params()
    point = {a.name: a.values[-1] for a in space.axes}
    space.materialize(point, base=base)
    assert base == default_params()


def test_materialize_clamps_app_cores_to_the_budget():
    space = default_space()
    base = default_params()
    point = {a.name: a.values[0] for a in space.axes}
    point["os_cores"] = 8
    design = space.materialize(point, base=base)
    total = base.node.total_cores
    assert design.params.node.app_cores == total - 8
    assert (design.params.node.os_cores + design.params.node.app_cores
            <= total)


def test_default_space_covers_the_paper_axes():
    space = default_space()
    names = [a.name for a in space.axes]
    assert names == ["sdma_engines", "pio_threshold", "sdma_max_request",
                     "window_size", "prefetch_windows", "os_cores",
                     "os_config"]
    assert space.size == 8640
    assert set(space.axis("os_config").values) \
        == {cfg.value for cfg in OSConfig}
    assert "8640" in space.describe()
